package server

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and returns the parsed samples: series name
// (with labels) to value.
func scrape(t *testing.T, s *Server) map[string]float64 {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	return parseExposition(t, w.Body.String())
}

// sampleRE is one non-comment line of the text exposition format.
var sampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^{}]*\})?) ([-+]?[0-9.]+(?:[eE][-+]?[0-9]+)?|NaN)$`)

// parseExposition checks every line of the exposition parses and returns
// the samples.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("unknown comment line %q", line)
			}
			continue
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("unparseable sample value in %q: %v", line, err)
		}
		out[m[1]] = v
	}
	return out
}

// sumFamily totals every series of one family (across label sets).
func sumFamily(samples map[string]float64, family string) float64 {
	total := 0.0
	for name, v := range samples {
		if name == family || strings.HasPrefix(name, family+"{") {
			total += v
		}
	}
	return total
}

func TestMetricsEndpoint(t *testing.T) {
	s, g := testServer(t)
	first, sur := someName(g)

	before := scrape(t, s)

	// Serve a search and a not-found so two status classes are recorded.
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/api/search?first_name="+first+"&surname="+sur, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("search status %d", w.Code)
	}
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/api/search", nil))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad search status %d", w.Code)
	}

	after := scrape(t, s)

	// Counters must be present, nonzero, and monotonic across requests.
	reqBefore, reqAfter := sumFamily(before, "snaps_http_requests_total"), sumFamily(after, "snaps_http_requests_total")
	if reqAfter == 0 {
		t.Fatal("snaps_http_requests_total missing or zero after requests")
	}
	if reqAfter < reqBefore+2 {
		t.Fatalf("request counter not monotonic: %v -> %v", reqBefore, reqAfter)
	}
	searchRoute := `snaps_http_requests_total{route="/api/search",code="2xx"}`
	if after[searchRoute] < 1 {
		t.Fatalf("per-route counter %s = %v, want >= 1", searchRoute, after[searchRoute])
	}
	badRoute := `snaps_http_requests_total{route="/api/search",code="4xx"}`
	if after[badRoute] < 1 {
		t.Fatalf("per-route counter %s = %v, want >= 1", badRoute, after[badRoute])
	}
	if sumFamily(after, "snaps_query_searches_total") < 1 {
		t.Fatal("snaps_query_searches_total missing after a search")
	}
	// The request latency histogram must carry the served requests, one
	// series per status class.
	if v := after[`snaps_http_request_seconds_count{route="/api/search",code="2xx"}`]; v < 1 {
		t.Fatalf("2xx latency histogram count %v, want >= 1", v)
	}
	if v := after[`snaps_http_request_seconds_count{route="/api/search",code="4xx"}`]; v < 1 {
		t.Fatalf("4xx latency histogram count %v, want >= 1", v)
	}
	// A scrape itself is counted: /metrics appears as a route.
	if sumFamily(after, `snaps_http_requests_total{route="/metrics",code="2xx"}`) < 1 {
		t.Fatal("the /metrics route is not itself instrumented")
	}
}

func TestRuntimeGaugesOnScrape(t *testing.T) {
	s, _ := testServer(t)
	samples := scrape(t, s)

	if v := sumFamily(samples, "snaps_goroutines"); v < 1 {
		t.Errorf("snaps_goroutines = %v, want >= 1", v)
	}
	if v := sumFamily(samples, "snaps_heap_alloc_bytes"); v <= 0 {
		t.Errorf("snaps_heap_alloc_bytes = %v, want > 0", v)
	}
	found := false
	for name := range samples {
		if name == "snaps_gc_pause_seconds_total" {
			found = true
		}
	}
	if !found {
		t.Error("snaps_gc_pause_seconds_total missing from scrape")
	}
	if v := sumFamily(samples, "snaps_build_info"); v != 1 {
		t.Errorf("snaps_build_info = %v, want constant 1", v)
	}
	for name := range samples {
		if strings.HasPrefix(name, "snaps_build_info{") {
			if !strings.Contains(name, `go_version="go`) {
				t.Errorf("build info series lacks go_version label: %s", name)
			}
			return
		}
	}
	t.Error("snaps_build_info has no labels")
}

func TestMetricsEndpointMethodNotAllowed(t *testing.T) {
	s, _ := testServer(t)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("POST", "/metrics", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: status %d, want 405", w.Code)
	}
}

func TestPprofGatedBehindEnable(t *testing.T) {
	s, _ := testServer(t)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != http.StatusNotFound {
			t.Fatalf("GET %s without EnablePprof: status %d, want 404", path, w.Code)
		}
	}

	s.EnablePprof()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ after EnablePprof: status %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
}

func TestStatusClass(t *testing.T) {
	for code, want := range map[int]string{200: "2xx", 204: "2xx", 302: "3xx", 404: "4xx", 500: "5xx", 503: "5xx"} {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %s, want %s", code, got, want)
		}
	}
}
