// Package server exposes the online component of SNAPS over HTTP: the query
// form, the ranked result list (Figs. 5-6 of the paper), and the family
// pedigree view (Figs. 7-8), as both a minimal HTML interface and a JSON
// API.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/snaps/snaps/internal/admission"
	"github.com/snaps/snaps/internal/gedcom"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/shard"
)

// servingView is the server's immutable view of one serving generation:
// either a single query engine or a shard coordinator. Exactly one of the
// two is set; every handler loads the view once and works on that
// consistent snapshot for its whole lifetime.
type servingView struct {
	eng   *query.Engine
	coord *shard.Coordinator
}

func (v *servingView) graph() *pedigree.Graph {
	if v.coord != nil {
		return v.coord.Graph()
	}
	return v.eng.Graph
}

func (v *servingView) generation() uint64 {
	if v.coord != nil {
		return v.coord.Generation()
	}
	return v.eng.Generation
}

func (v *servingView) search(ctx context.Context, q query.Query) []query.Result {
	if v.coord != nil {
		return v.coord.SearchContext(ctx, q)
	}
	return v.eng.SearchContext(ctx, q)
}

func (v *servingView) explain(q query.Query, id pedigree.NodeID) query.Explanation {
	if v.coord != nil {
		return v.coord.Explain(q, id)
	}
	return v.eng.Explain(q, id)
}

// Server serves the SNAPS web interface for one built data set. The
// serving view (engine or shard coordinator) is held behind an atomic
// pointer so the live ingestion subsystem can hot-swap a freshly rebuilt
// generation (engines + graph + indexes) without blocking request
// handlers: each request loads the pointer once and works on that
// consistent snapshot for its whole lifetime.
type Server struct {
	serving atomic.Pointer[servingView]
	// Generations is the pedigree extraction depth g (paper: 2).
	Generations int
	mux         *http.ServeMux
	tracer      *obs.Tracer
	// admit, when set (EnableAdmission), decides every request before its
	// handler runs: weighted concurrency limits, rate limits, and ingest
	// backpressure, with the pedigree-before-search degradation ladder.
	admit *admission.Controller
	// flight, when set (EnableFlightRecorder), receives one sampled record
	// per admission-classified request — including shed ones — for offline
	// replay by cmd/snapsload.
	flight *obs.FlightRecorder
	// slo, when set (EnableSLO), tracks every response against the latency
	// and error budgets; /healthz reports its 1m/5m burn rates.
	slo *obs.SLOTracker
}

// New wires the handlers around a single-shard query engine.
func New(engine *query.Engine) *Server {
	return newServer(&servingView{eng: engine})
}

// NewSharded wires the handlers around a shard coordinator: searches
// scatter-gather across its shards and explanations route to the owning
// shard, with byte-identical responses to the single-engine server.
func NewSharded(coord *shard.Coordinator) *Server {
	return newServer(&servingView{coord: coord})
}

func newServer(v *servingView) *Server {
	s := &Server{Generations: 2, mux: http.NewServeMux(), tracer: obs.NewTracer(256)}
	s.serving.Store(v)
	s.mux.HandleFunc("/", s.handleHome)
	s.mux.HandleFunc("/api/search", s.handleSearch)
	s.mux.HandleFunc("/api/pedigree", s.handlePedigree)
	s.mux.HandleFunc("/api/pedigree.dot", s.handlePedigreeDot)
	s.mux.HandleFunc("/api/pedigree.ged", s.handlePedigreeGedcom)
	s.mux.HandleFunc("/pedigree", s.handlePedigreeHTML)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// view returns the current serving view.
func (s *Server) view() *servingView { return s.serving.Load() }

// Engine returns the currently served query engine, or nil when the
// server fronts a shard coordinator (use Graph and the handlers instead).
func (s *Server) Engine() *query.Engine { return s.view().eng }

// Coordinator returns the currently served shard coordinator, or nil for
// single-engine servers.
func (s *Server) Coordinator() *shard.Coordinator { return s.view().coord }

// Graph returns the currently served pedigree graph regardless of serving
// mode.
func (s *Server) Graph() *pedigree.Graph { return s.view().graph() }

// SetEngine atomically swaps the served engine. In-flight requests keep
// the generation they loaded; new requests see the new one.
func (s *Server) SetEngine(e *query.Engine) { s.serving.Store(&servingView{eng: e}) }

// SetCoordinator atomically swaps the served shard coordinator.
func (s *Server) SetCoordinator(c *shard.Coordinator) {
	s.serving.Store(&servingView{coord: c})
}

// Tracer returns the server's span tracer, for configuring slow-query
// logging and for sharing with the ingest pipeline so flush traces land in
// the same ring buffer the debug endpoint serves.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// ServeHTTP implements http.Handler. Every request is timed and counted
// under its mux route pattern (bounded cardinality) and status class, and
// runs under a root span: an inbound X-Request-ID becomes the trace ID
// (minted otherwise) and is echoed on the response, so clients, log
// records, and GET /api/debug/traces all correlate on one ID.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	_, route := s.mux.Handler(r)
	spanName := route
	if spanName == "" {
		spanName = "unmatched"
	}
	ctx, span := s.tracer.StartRoot(r.Context(), r.Method+" "+spanName, r.Header.Get("X-Request-ID"))
	traceID := obs.TraceIDFromContext(ctx)
	w.Header().Set("X-Request-ID", traceID)
	start := time.Now()
	fc := s.startFlight(route, r)

	// Admission runs before the handler: a shed request never touches the
	// engine or the pedigree graph, it only costs the decision itself.
	if s.admit != nil {
		release, dec := s.admit.Admit(classifyRoute(route))
		if !dec.Admitted {
			shed(w, dec)
			span.SetAttr("shed", 1)
			span.SetAttrStr("shed_reason", dec.Reason)
			span.SetAttr("status", http.StatusTooManyRequests)
			span.End()
			d := time.Since(start)
			observeRequest(route, http.StatusTooManyRequests, d, traceID)
			if s.slo != nil {
				s.slo.Observe(http.StatusTooManyRequests, d)
			}
			fc.finishShed(s, dec, d, traceID)
			return
		}
		defer release()
	}

	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, fc.teeBody(r.WithContext(ctx)))
	span.SetAttr("status", int64(sw.status))
	span.End()
	d := time.Since(start)
	observeRequest(route, sw.status, d, traceID)
	if s.slo != nil {
		s.slo.Observe(sw.status, d)
	}
	fc.finish(s, ctx, sw, d, traceID)
}

// SearchResult is one row of the JSON result list.
type SearchResult struct {
	Entity    int32    `json:"entity"`
	Name      string   `json:"name"`
	FirstName string   `json:"first_name"`
	Surname   string   `json:"surname"`
	Gender    string   `json:"gender"`
	Year      int      `json:"year"`
	Location  string   `json:"location"`
	Score     float64  `json:"score"`
	Exact     []string `json:"exact_fields"`
	Approx    []string `json:"approx_fields"`
}

// PedigreeResponse is the JSON pedigree view.
type PedigreeResponse struct {
	Focus   int32            `json:"focus"`
	Members []PedigreeMember `json:"members"`
	Edges   []PedigreeEdge   `json:"edges"`
	Text    string           `json:"text"`
}

// PedigreeMember is one entity in the extracted pedigree.
type PedigreeMember struct {
	Entity int32  `json:"entity"`
	Name   string `json:"name"`
	Gender string `json:"gender"`
	Birth  int    `json:"birth_year,omitempty"`
	Death  int    `json:"death_year,omitempty"`
	Hops   int    `json:"hops"`
}

// PedigreeEdge is one relationship in the extracted pedigree.
type PedigreeEdge struct {
	From int32  `json:"from"`
	To   int32  `json:"to"`
	Rel  string `json:"rel"`
}

func (s *Server) parseQuery(r *http.Request) query.Query {
	q := query.Query{
		FirstName: strings.ToLower(strings.TrimSpace(r.FormValue("first_name"))),
		Surname:   strings.ToLower(strings.TrimSpace(r.FormValue("surname"))),
		Location:  strings.ToLower(strings.TrimSpace(r.FormValue("location"))),
		YearFrom:  query.ParseYear(r.FormValue("year_from")),
		YearTo:    query.ParseYear(r.FormValue("year_to")),
	}
	switch r.FormValue("gender") {
	case "m":
		q.Gender = model.Male
	case "f":
		q.Gender = model.Female
	}
	switch r.FormValue("type") {
	case "b":
		q.CertType, q.HasCertType = model.Birth, true
	case "d":
		q.CertType, q.HasCertType = model.Death, true
	}
	return q
}

// search runs the request's query against the currently served engine and
// also reports that engine's snapshot generation, so handlers can stamp
// responses with the generation that produced them.
func (s *Server) search(r *http.Request) ([]SearchResult, uint64, error) {
	q := s.parseQuery(r)
	if q.FirstName == "" || q.Surname == "" {
		return nil, 0, fmt.Errorf("first_name and surname are required")
	}
	v := s.view()
	results := v.search(r.Context(), q)
	g := v.graph()
	out := make([]SearchResult, 0, len(results))
	for _, res := range results {
		n := g.Node(res.Entity)
		sr := SearchResult{
			Entity: int32(res.Entity),
			Name:   n.DisplayName(),
			Gender: n.Gender.String(),
			Score:  res.Score,
		}
		if len(n.FirstNames) > 0 {
			sr.FirstName = n.FirstNames[0]
		}
		if len(n.Surnames) > 0 {
			sr.Surname = n.Surnames[0]
		}
		if len(n.Locations) > 0 {
			sr.Location = n.Locations[0]
		}
		if n.BirthYear != 0 {
			sr.Year = n.BirthYear
		} else {
			sr.Year = n.MinYear
		}
		// Canonical field order: Matched is a map, and ranging it would
		// shuffle exact_fields/approx_fields between otherwise
		// byte-identical responses.
		for f := index.Field(0); f < index.NumFields; f++ {
			exact, ok := res.Matched[f]
			switch {
			case !ok:
			case exact:
				sr.Exact = append(sr.Exact, f.String())
			default:
				sr.Approx = append(sr.Approx, f.String())
			}
		}
		out = append(out, sr)
	}
	return out, v.generation(), nil
}

// SearchResponse is the JSON envelope of GET /api/search: the ranked rows
// plus the trace ID of the request that produced them, so a ranking can be
// correlated with its span tree in /api/debug/traces and with /api/explain
// output for any returned entity.
type SearchResponse struct {
	TraceID string         `json:"trace_id,omitempty"`
	Results []SearchResult `json:"results"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	out, gen, err := s.search(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The serving snapshot that produced this ranking: lets clients (and
	// the stress tests) correlate results with ingest generations.
	w.Header().Set("X-Snaps-Generation", strconv.FormatUint(gen, 10))
	writeJSON(w, SearchResponse{TraceID: obs.TraceIDFromContext(r.Context()), Results: out})
}

func (s *Server) extractPedigree(r *http.Request) (*PedigreeResponse, error) {
	g := s.Graph()
	id, err := strconv.Atoi(r.FormValue("id"))
	if err != nil || id < 0 || id >= len(g.Nodes) {
		return nil, fmt.Errorf("invalid entity id")
	}
	p := g.Extract(pedigree.NodeID(id), s.Generations)
	resp := &PedigreeResponse{Focus: int32(p.Focus), Text: g.RenderText(p)}
	for member, hops := range p.Members {
		n := g.Node(member)
		resp.Members = append(resp.Members, PedigreeMember{
			Entity: int32(member), Name: n.DisplayName(),
			Gender: n.Gender.String(), Birth: n.BirthYear, Death: n.DeathYear,
			Hops: hops,
		})
	}
	// Deterministic order for clients and tests.
	sortMembers(resp.Members)
	for _, e := range p.Edges {
		resp.Edges = append(resp.Edges, PedigreeEdge{
			From: int32(e.From), To: int32(e.To), Rel: e.Rel.String(),
		})
	}
	return resp, nil
}

func sortMembers(ms []PedigreeMember) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && less(ms[j], ms[j-1]); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

func less(a, b PedigreeMember) bool {
	if a.Hops != b.Hops {
		return a.Hops < b.Hops
	}
	return a.Entity < b.Entity
}

func (s *Server) handlePedigree(w http.ResponseWriter, r *http.Request) {
	resp, err := s.extractPedigree(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp)
}

// handlePedigreeDot serves the Graphviz rendering of a pedigree, suitable
// for piping into dot(1) to obtain the tree images of Figs. 7-8.
func (s *Server) handlePedigreeDot(w http.ResponseWriter, r *http.Request) {
	g := s.Graph()
	id, err := strconv.Atoi(r.FormValue("id"))
	if err != nil || id < 0 || id >= len(g.Nodes) {
		http.Error(w, "invalid entity id", http.StatusBadRequest)
		return
	}
	p := g.Extract(pedigree.NodeID(id), s.Generations)
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	fmt.Fprint(w, g.RenderDot(p))
}

// handlePedigreeGedcom serves one pedigree as a GEDCOM 5.5.1 document for
// import into mainstream family-tree software.
func (s *Server) handlePedigreeGedcom(w http.ResponseWriter, r *http.Request) {
	g := s.Graph()
	id, err := strconv.Atoi(r.FormValue("id"))
	if err != nil || id < 0 || id >= len(g.Nodes) {
		http.Error(w, "invalid entity id", http.StatusBadRequest)
		return
	}
	p := g.Extract(pedigree.NodeID(id), s.Generations)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Disposition", "attachment; filename=pedigree.ged")
	if err := gedcom.ExportPedigree(w, g, p); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

var homeTmpl = template.Must(template.New("home").Parse(`<!doctype html>
<html><head><title>Scotland Family Pedigree Search Tool</title>
<style>
body{font-family:sans-serif;margin:2em;max-width:60em}
table{border-collapse:collapse}td,th{border:1px solid #999;padding:4px 8px}
.exact{color:#060}.approx{color:#c60}
</style></head><body>
<h1>Scotland Family Pedigree Search Tool</h1>
<p>Anonymised data set used for querying.</p>
<form method="get" action="/">
  <label>Forename* <input name="first_name" value="{{.Q.FirstName}}"></label>
  <label>Surname* <input name="surname" value="{{.Q.Surname}}"></label>
  <label>Gender <select name="gender">
    <option value="">any</option>
    <option value="m" {{if eq .Gender "m"}}selected{{end}}>male</option>
    <option value="f" {{if eq .Gender "f"}}selected{{end}}>female</option>
  </select></label>
  <label>Year from <input name="year_from" size="4" value="{{if .Q.YearFrom}}{{.Q.YearFrom}}{{end}}"></label>
  <label>to <input name="year_to" size="4" value="{{if .Q.YearTo}}{{.Q.YearTo}}{{end}}"></label>
  <label>Parish/District <input name="location" value="{{.Q.Location}}"></label>
  <label>Records <select name="type">
    <option value="">any</option>
    <option value="b" {{if eq .Type "b"}}selected{{end}}>birth</option>
    <option value="d" {{if eq .Type "d"}}selected{{end}}>death</option>
  </select></label>
  <button type="submit">Submit</button>
</form>
{{if .Results}}
<h2>Query results</h2>
<table><tr><th>Forename</th><th>Surname</th><th>Gender</th><th>Year</th><th>Parish</th><th>Score</th><th></th></tr>
{{range .Results}}
<tr><td>{{.FirstName}}</td><td>{{.Surname}}</td><td>{{.Gender}}</td><td>{{.Year}}</td>
<td>{{.Location}}</td><td>{{printf "%.2f" .Score}}</td>
<td><a href="/pedigree?id={{.Entity}}">Explore</a></td></tr>
{{end}}</table>
{{end}}
</body></html>`))

var pedigreeTmpl = template.Must(template.New("pedigree").Parse(`<!doctype html>
<html><head><title>Family Pedigree</title>
<style>body{font-family:sans-serif;margin:2em}pre{background:#f4f4f4;padding:1em}</style>
</head><body>
<h1>Family pedigree</h1>
<p><a href="/">&laquo; back to search</a></p>
<pre>{{.Text}}</pre>
</body></html>`))

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	data := struct {
		Q       query.Query
		Gender  string
		Type    string
		Results []SearchResult
	}{
		Q:      s.parseQuery(r),
		Gender: r.FormValue("gender"),
		Type:   r.FormValue("type"),
	}
	if data.Q.FirstName != "" && data.Q.Surname != "" {
		if results, _, err := s.search(r); err == nil {
			data.Results = results
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := homeTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handlePedigreeHTML(w http.ResponseWriter, r *http.Request) {
	resp, err := s.extractPedigree(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pedigreeTmpl.Execute(w, resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// BuildIndexes is a convenience that builds the pedigree graph indexes and
// the query engine for a resolved data set; used by cmd/snaps and examples.
func BuildIndexes(g *pedigree.Graph, simThreshold float64) *query.Engine {
	k, sim := index.Build(g, simThreshold)
	return query.NewEngine(g, k, sim)
}

// EnableExplain mounts GET /api/explain?id=N&first_name=..&surname=..[&...],
// returning the per-field score breakdown for one entity against a query —
// the data behind the result list's exact/approximate colour coding.
func (s *Server) EnableExplain() {
	s.mux.HandleFunc("/api/explain", func(w http.ResponseWriter, r *http.Request) {
		v := s.view()
		id, err := strconv.Atoi(r.FormValue("id"))
		if err != nil || id < 0 || id >= len(v.graph().Nodes) {
			http.Error(w, "invalid entity id", http.StatusBadRequest)
			return
		}
		q := s.parseQuery(r)
		if q.FirstName == "" || q.Surname == "" {
			http.Error(w, "first_name and surname are required", http.StatusBadRequest)
			return
		}
		ex := v.explain(q, pedigree.NodeID(id))
		type fieldJSON struct {
			Field        string  `json:"field"`
			QueryValue   string  `json:"query_value,omitempty"`
			MatchedValue string  `json:"matched_value,omitempty"`
			Similarity   float64 `json:"similarity"`
			Weight       float64 `json:"weight"`
			Contribution float64 `json:"contribution"`
			Exact        bool    `json:"exact"`
		}
		resp := struct {
			Entity int32       `json:"entity"`
			Score  float64     `json:"score"`
			Fields []fieldJSON `json:"fields"`
		}{Entity: int32(id), Score: ex.Score}
		for _, f := range ex.Fields {
			resp.Fields = append(resp.Fields, fieldJSON{
				Field: f.Field.String(), QueryValue: f.QueryValue,
				MatchedValue: f.MatchedValue, Similarity: f.Similarity,
				Weight: f.Weight, Contribution: f.Contribution, Exact: f.Exact,
			})
		}
		writeJSON(w, resp)
	})
}
