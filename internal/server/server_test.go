package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/pedigree"
)

func testServer(t *testing.T) (*Server, *pedigree.Graph) {
	t.Helper()
	p := dataset.Generate(dataset.IOS().Scaled(0.06))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(p.Dataset, pr.Result.Store)
	engine := BuildIndexes(g, 0.5)
	return New(engine), g
}

// someName returns a first name and surname present in the graph, query-
// escaped: every caller splices the pair into a request URL, and multi-token
// names would otherwise produce a malformed request line.
func someName(g *pedigree.Graph) (string, string) {
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if len(n.FirstNames) > 0 && len(n.Surnames) > 0 {
			return url.QueryEscape(n.FirstNames[0]), url.QueryEscape(n.Surnames[0])
		}
	}
	return "", ""
}

func TestSearchAPI(t *testing.T) {
	s, g := testServer(t)
	first, sur := someName(g)
	req := httptest.NewRequest("GET", "/api/search?first_name="+first+"&surname="+sur, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.TraceID == "" {
		t.Error("search response missing trace_id")
	}
	results := resp.Results
	if len(results) == 0 {
		t.Fatal("no results for an indexed name")
	}
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Fatal("results not ranked")
		}
	}
}

func TestSearchAPIRequiresNames(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest("GET", "/api/search?first_name=mary", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("missing surname should 400, got %d", w.Code)
	}
}

func TestPedigreeAPI(t *testing.T) {
	s, g := testServer(t)
	// Pick an entity with edges so the pedigree is non-trivial.
	var id pedigree.NodeID = -1
	for i := range g.Nodes {
		if len(g.Nodes[i].Edges) > 0 {
			id = g.Nodes[i].ID
			break
		}
	}
	if id < 0 {
		t.Skip("no connected entity")
	}
	req := httptest.NewRequest("GET", "/api/pedigree?id="+itoa(int(id)), nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp PedigreeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.Focus != int32(id) {
		t.Errorf("focus = %d, want %d", resp.Focus, id)
	}
	if len(resp.Members) < 2 {
		t.Errorf("pedigree has %d members, want >= 2", len(resp.Members))
	}
	if resp.Members[0].Hops != 0 {
		t.Error("members not sorted by hops")
	}
	if resp.Text == "" {
		t.Error("missing text rendering")
	}
}

func TestPedigreeAPIBadID(t *testing.T) {
	s, _ := testServer(t)
	for _, q := range []string{"id=abc", "id=-1", "id=99999999", ""} {
		req := httptest.NewRequest("GET", "/api/pedigree?"+q, nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, w.Code)
		}
	}
}

func TestHomeHTML(t *testing.T) {
	s, g := testServer(t)
	req := httptest.NewRequest("GET", "/", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "Scotland Family Pedigree Search Tool") {
		t.Error("missing page title")
	}

	// With query parameters the page renders a results table.
	first, sur := someName(g)
	req = httptest.NewRequest("GET", "/?first_name="+first+"&surname="+sur, nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if !strings.Contains(w.Body.String(), "Explore") {
		t.Error("results table missing Explore links")
	}
}

func TestPedigreeHTML(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest("GET", "/pedigree?id=0", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "Family pedigree") {
		t.Error("missing pedigree page")
	}
}

func TestNotFound(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest("GET", "/nonexistent", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", w.Code)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func TestFeedbackEndpoints(t *testing.T) {
	s, _ := testServer(t)
	h := s.EnableFeedback()

	// Record a decision.
	req := httptest.NewRequest("POST", "/api/feedback?a=0&b=1&decision=confirm", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusNoContent {
		t.Fatalf("POST status %d: %s", w.Code, w.Body.String())
	}
	if h.Journal().Len() != 1 {
		t.Fatal("decision not journalled")
	}

	// Summary reflects it.
	req = httptest.NewRequest("GET", "/api/feedback", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var st struct {
		Decisions int `json:"decisions"`
		MustLink  int `json:"must_link"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Decisions != 1 || st.MustLink != 1 {
		t.Fatalf("summary %+v", st)
	}

	// Invalid requests are rejected.
	for _, q := range []string{
		"a=0&b=0&decision=confirm",       // same record
		"a=-1&b=1&decision=confirm",      // out of range
		"a=0&b=99999999&decision=reject", // out of range
		"a=0&b=1&decision=maybe",         // bad decision
	} {
		req = httptest.NewRequest("POST", "/api/feedback?"+q, nil)
		w = httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, w.Code)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, g := testServer(t)
	s.EnableStats()
	req := httptest.NewRequest("GET", "/api/stats", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Entities != len(g.Nodes) {
		t.Errorf("entities %d, want %d", st.Entities, len(g.Nodes))
	}
	if st.Births == 0 || st.Deaths == 0 {
		t.Error("certificate counts missing")
	}
}

func TestPedigreeDotEndpoint(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest("GET", "/api/pedigree.dot?id=0", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if !strings.HasPrefix(w.Body.String(), "digraph pedigree {") {
		t.Errorf("not a dot document:\n%s", w.Body.String()[:60])
	}
	req = httptest.NewRequest("GET", "/api/pedigree.dot?id=bad", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad id should 400, got %d", w.Code)
	}
}

func TestPedigreeGedcomEndpoint(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest("GET", "/api/pedigree.ged?id=0", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	body := w.Body.String()
	if !strings.HasPrefix(body, "0 HEAD\n") || !strings.HasSuffix(body, "0 TRLR\n") {
		t.Error("not a GEDCOM document")
	}
}

func TestExplainEndpoint(t *testing.T) {
	s, g := testServer(t)
	s.EnableExplain()
	first, sur := someName(g)
	req := httptest.NewRequest("GET", "/api/explain?id=0&first_name="+first+"&surname="+sur, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Entity int32   `json:"entity"`
		Score  float64 `json:"score"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Entity != 0 || resp.Score < 0 || resp.Score > 100 {
		t.Errorf("bad explanation: %+v", resp)
	}
	req = httptest.NewRequest("GET", "/api/explain?id=bad&first_name=a&surname=b", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("bad id should 400, got %d", w.Code)
	}
}
