package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/snaps/snaps/internal/admission"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/shard"
)

// shardedFamily builds the deterministic two-birth family behind an
// n-shard coordinator with live ingestion enabled.
func shardedFamily(t *testing.T, nshards int, cfg ingest.Config) (*Server, *ingest.Pipeline) {
	t.Helper()
	d := &model.Dataset{Name: "live-sharded"}
	add := func(role model.Role, cert model.CertID, first, sur string, year int, g model.Gender) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Addr: model.Intern("5 uig"), Year: year,
			Truth: model.NoPerson,
		})
		return id
	}
	add(model.Bb, 0, "torquil", "macsween", 1870, model.Male)
	add(model.Bm, 0, "flora", "macsween", 1870, model.Female)
	add(model.Bf, 0, "ewen", "macsween", 1870, model.Male)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 0, Type: model.Birth, Year: 1870, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 0, model.Bm: 1, model.Bf: 2},
	})
	add(model.Bb, 1, "una", "macsween", 1872, model.Female)
	add(model.Bm, 1, "flora", "macsween", 1872, model.Female)
	add(model.Bf, 1, "ewen", "macsween", 1872, model.Male)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 1, Type: model.Birth, Year: 1872, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 3, model.Bm: 4, model.Bf: 5},
	})

	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	sv := ingest.NewShardedServing(d, pr.Result.Store,
		shard.Options{Shards: nshards, SimThreshold: 0.5, CacheEntries: 64})
	if sv.Shards == nil {
		t.Fatal("sharded serving bundle has no coordinator")
	}
	srv := NewSharded(sv.Shards)
	pipe, err := ingest.NewPipeline(sv, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableIngest(pipe)
	t.Cleanup(func() { pipe.Close() })
	return srv, pipe
}

// hotShardBirthJSON renders an ingest certificate whose principal (the
// baby) carries the given name, so RouteCert sends it to
// shard.Route(first, sur, n).
func hotShardBirthJSON(first, sur string, year int) string {
	return fmt.Sprintf(`{
		"type": "birth", "year": %d, "address": "7 staffin",
		"roles": {
			"Bb": {"first_name": %q, "surname": %q, "gender": "m"},
			"Bm": {"first_name": "morag", "surname": %q},
			"Bf": {"first_name": "alasdair", "surname": %q}
		}
	}`, year, first, sur, sur, sur)
}

// TestHotShardBackpressureHTTP is the regression for the hot-shard
// blind spot: before per-shard accounting, a backlog concentrated on one
// partition hid behind the global average and admission never pushed
// back. The test saturates a single shard — the global backlog stays far
// under its own bound — and asserts POST /api/ingest sheds with 429 +
// Retry-After and reason shard_backlog, while GET /healthz turns 503 and
// its per-shard split names the hot shard (honest readiness).
func TestHotShardBackpressureHTTP(t *testing.T) {
	const nshards = 4
	icfg := ingest.DefaultConfig()
	icfg.BatchSize = 1 << 20 // flush only when the test says so
	icfg.MaxAge = time.Hour
	srv, pipe := shardedFamily(t, nshards, icfg)

	acfg := admission.DefaultConfig()
	acfg.MaxBacklogRecords = 100 // global bound far away: only the shard bound may trip
	acfg.MaxShardBacklogRecords = 2
	acfg.BacklogRetryAfter = 3 * time.Second
	acfg.Backlog = pipe.Backlog
	acfg.ShardBacklog = pipe.HottestShardBacklog
	srv.EnableAdmission(admission.New(acfg))
	srv.EnableHealth(pipe)

	// Pick certificates that all route to one shard: distinct baby first
	// names, same surname, identical route.
	hotShard := shard.Route("hotname0", "hotclan", nshards)
	var certs []string
	for i := 0; len(certs) < 3; i++ {
		first := fmt.Sprintf("hotname%d", i)
		if shard.Route(first, "hotclan", nshards) == hotShard {
			certs = append(certs, hotShardBirthJSON(first, "hotclan", 1880+i))
		}
	}

	post := func(body string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/api/ingest", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		srv.ServeHTTP(w, req)
		return w
	}
	shedKey := "snaps_admission_shed_total{" + obs.Label("class", "ingest") + "," +
		obs.Label("reason", "shard_backlog") + "}"
	shedBefore := obs.Default.Counter(shedKey, "").Value()

	// Fill the hot shard to its bound; every other shard stays empty.
	for i := 0; i < 2; i++ {
		if w := post(certs[i]); w.Code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}
	for s, b := range pipe.ShardBacklog() {
		want := 0
		if s == hotShard {
			want = 2
		}
		if b.Pending != want {
			t.Fatalf("shard %d backlog = %d records, want %d", s, b.Pending, want)
		}
	}
	// The blind spot being fixed: globally this is 2 records against a
	// bound of 100 — the average would sail through admission.
	if rec, _ := pipe.Backlog(); rec != 2 || rec >= acfg.MaxBacklogRecords {
		t.Fatalf("global backlog = %d records, want 2 (< global bound %d)", rec, acfg.MaxBacklogRecords)
	}

	// At the per-shard bound: ingest sheds with the flush-horizon
	// Retry-After, attributed to the shard_backlog reason.
	w := post(certs[2])
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over hot-shard bound: status %d, want 429: %s", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want %q (the flush horizon)", ra, "3")
	}
	if shed := obs.Default.Counter(shedKey, "").Value() - shedBefore; shed < 1 {
		t.Fatalf("shard_backlog shed counter advanced by %d, want >= 1", shed)
	}

	// Honest readiness: /healthz is 503/overloaded and its per-shard
	// split exposes the hot shard the global numbers hide.
	hw := do(srv, "GET", "/healthz")
	if hw.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with hot shard: status %d, want 503", hw.Code)
	}
	var health HealthResponse
	if err := json.Unmarshal(hw.Body.Bytes(), &health); err != nil {
		t.Fatalf("bad /healthz JSON: %v", err)
	}
	if health.Status != "overloaded" {
		t.Fatalf("health status %q, want overloaded", health.Status)
	}
	if health.BacklogRecords != 2 {
		t.Fatalf("health global backlog = %d records, want 2", health.BacklogRecords)
	}
	if len(health.Shards) != nshards {
		t.Fatalf("health reports %d shards, want %d", len(health.Shards), nshards)
	}
	for s, b := range health.Shards {
		want := 0
		if s == hotShard {
			want = 2
		}
		if b.Shard != s || b.Pending != want {
			t.Fatalf("health shard %d = %+v, want shard %d with %d records", s, b, s, want)
		}
	}

	// Search traffic is untouched by ingest backpressure — and it flows
	// through the scatter-gather coordinator.
	if w := do(srv, "GET", "/api/search?first_name=torquil&surname=macsween"); w.Code != http.StatusOK {
		t.Fatalf("search during hot-shard backpressure: status %d", w.Code)
	}

	// A flush drains the hot shard, reopens admission, and the retried
	// certificate becomes searchable in the republished coordinator.
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	if w := post(certs[2]); w.Code != http.StatusAccepted {
		t.Fatalf("submit after flush: status %d: %s", w.Code, w.Body.String())
	}
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	if hw := do(srv, "GET", "/healthz"); hw.Code != http.StatusOK {
		t.Fatalf("/healthz after drain: status %d, want 200", hw.Code)
	}
	if w := do(srv, "GET", "/api/search?first_name=hotname0&surname=hotclan"); w.Code != http.StatusOK {
		t.Fatalf("search for ingested name: status %d", w.Code)
	} else {
		var sr SearchResponse
		if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
			t.Fatal(err)
		}
		if len(sr.Results) == 0 {
			t.Fatal("ingested hot-shard certificate not searchable after flush")
		}
	}
}
