package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/obs"
)

func TestSearchReturnsTraceID(t *testing.T) {
	s, g := testServer(t)
	first, sur := someName(g)

	// Without an inbound X-Request-ID the server generates one and reports
	// it both in the response header and the body envelope.
	req := httptest.NewRequest("GET", "/api/search?first_name="+first+"&surname="+sur, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var resp SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == "" {
		t.Fatal("no trace_id in search response")
	}
	if hdr := w.Header().Get("X-Request-ID"); hdr != resp.TraceID {
		t.Errorf("X-Request-ID header %q != body trace_id %q", hdr, resp.TraceID)
	}

	// An inbound X-Request-ID is honoured as the trace ID.
	req = httptest.NewRequest("GET", "/api/search?first_name="+first+"&surname="+sur, nil)
	req.Header.Set("X-Request-ID", "caller-supplied-7")
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != "caller-supplied-7" {
		t.Errorf("trace_id %q, want the caller-supplied request ID", resp.TraceID)
	}
	if hdr := w.Header().Get("X-Request-ID"); hdr != "caller-supplied-7" {
		t.Errorf("X-Request-ID header %q not echoed", hdr)
	}
}

func TestTraceDebugGatedBehindEnable(t *testing.T) {
	s, _ := testServer(t)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/api/debug/traces", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("GET /api/debug/traces without EnableTraceDebug: status %d, want 404", w.Code)
	}

	s.EnableTraceDebug()
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/api/debug/traces", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /api/debug/traces after EnableTraceDebug: status %d", w.Code)
	}
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("POST", "/api/debug/traces", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /api/debug/traces: status %d, want 405", w.Code)
	}
}

// TestSearchTraceSpanTree is the acceptance test of the tracing layer: a
// search leaves a trace in the ring whose search span has the four stage
// children — blocking, accumulate, score, rank — with durations summing to
// within the root span.
func TestSearchTraceSpanTree(t *testing.T) {
	s, g := testServer(t)
	s.EnableTraceDebug()
	first, sur := someName(g)

	req := httptest.NewRequest("GET", "/api/search?first_name="+first+"&surname="+sur, nil)
	req.Header.Set("X-Request-ID", "trace-tree-1")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("search status %d", w.Code)
	}

	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/api/debug/traces", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("traces status %d", w.Code)
	}
	var traces []obs.TraceSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &traces); err != nil {
		t.Fatalf("bad traces JSON: %v", err)
	}
	var snap *obs.TraceSnapshot
	for i := range traces {
		if traces[i].TraceID == "trace-tree-1" {
			snap = &traces[i]
			break
		}
	}
	if snap == nil {
		t.Fatalf("search trace not in debug ring (%d traces present)", len(traces))
	}
	if !strings.Contains(snap.Name, "/api/search") {
		t.Errorf("root span name %q does not identify the route", snap.Name)
	}

	searches := snap.SpansNamed("search")
	if len(searches) != 1 {
		t.Fatalf("got %d search spans, want 1", len(searches))
	}
	kids := snap.Children(searches[0].ID)
	want := []string{"blocking", "accumulate", "score", "rank"}
	if len(kids) < len(want) {
		t.Fatalf("search span has %d children %v, want at least %v", len(kids), spanNames(kids), want)
	}
	byName := map[string]obs.SpanSnapshot{}
	var childSum int64
	for _, k := range kids {
		byName[k.Name] = k
		childSum += k.DurationUs
	}
	for _, name := range want {
		if _, ok := byName[name]; !ok {
			t.Errorf("search span missing %q child (have %v)", name, spanNames(kids))
		}
	}
	// Stage durations sum to within the enclosing spans (allow 1us of
	// per-span truncation each).
	slack := int64(len(kids) + 1)
	if childSum > searches[0].DurationUs+slack {
		t.Errorf("stage durations (%dus) exceed the search span (%dus)", childSum, searches[0].DurationUs)
	}
	if searches[0].DurationUs > snap.DurationUs+slack {
		t.Errorf("search span (%dus) exceeds the root trace (%dus)", searches[0].DurationUs, snap.DurationUs)
	}
	// The stages ran in order.
	for i := 1; i < len(want); i++ {
		if byName[want[i]].StartUs < byName[want[i-1]].StartUs {
			t.Errorf("%s started before %s", want[i], want[i-1])
		}
	}
	// The blocking and rank spans carry their workload attributes.
	if !hasAttr(byName["blocking"], "memo_hits") {
		t.Errorf("blocking span lacks memo_hits attr: %+v", byName["blocking"].Attrs)
	}
	if !hasAttr(byName["rank"], "results") {
		t.Errorf("rank span lacks results attr: %+v", byName["rank"].Attrs)
	}
}

func spanNames(spans []obs.SpanSnapshot) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

func hasAttr(s obs.SpanSnapshot, key string) bool {
	for _, a := range s.Attrs {
		if a.Key == key {
			return true
		}
	}
	return false
}

// TestSlowQueryLogOnSearch wires a zero threshold so every search counts as
// slow, and asserts exactly one structured record carrying the trace ID.
func TestSlowQueryLogOnSearch(t *testing.T) {
	s, g := testServer(t)
	var mu sync.Mutex
	var buf bytes.Buffer
	s.Tracer().SetLogger(obs.NewLogger(syncWriter{&mu, &buf}, 0, "json"))
	s.Tracer().SetSlowQuery(0, "search")
	first, sur := someName(g)

	req := httptest.NewRequest("GET", "/api/search?first_name="+first+"&surname="+sur, nil)
	req.Header.Set("X-Request-ID", "slow-req-1")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("search status %d", w.Code)
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 || lines[0] == "" {
		t.Fatalf("got %d slow-query records, want exactly 1:\n%s", len(lines), out)
	}
	var rec struct {
		Msg     string `json:"msg"`
		TraceID string `json:"trace_id"`
		Spans   []any  `json:"spans"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("slow-query record is not JSON: %v", err)
	}
	if rec.Msg != "slow query" {
		t.Errorf("msg %q, want \"slow query\"", rec.Msg)
	}
	if rec.TraceID != "slow-req-1" {
		t.Errorf("slow-query trace_id %q, want the request's", rec.TraceID)
	}
	if len(rec.Spans) < 5 {
		t.Errorf("slow-query record carries %d spans, want the full tree", len(rec.Spans))
	}

	// A non-search request must not trip the slow-query check.
	mu.Lock()
	buf.Reset()
	mu.Unlock()
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	mu.Lock()
	leaked := buf.Len()
	mu.Unlock()
	if leaked != 0 {
		t.Errorf("non-search request produced a slow-query record")
	}
}

type syncWriter struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// TestTraceDebugConcurrent scrapes /api/debug/traces while searches and
// ingest flushes run concurrently; meaningful under -race.
func TestTraceDebugConcurrent(t *testing.T) {
	cfg := ingest.DefaultConfig()
	cfg.BatchSize = 1
	cfg.MaxAge = 10 * time.Millisecond
	srv, _ := ingestFamily(t, cfg)
	srv.EnableTraceDebug()
	srv.Tracer().SetSlowQuery(0, "search")
	var mu sync.Mutex
	var buf bytes.Buffer
	srv.Tracer().SetLogger(obs.NewLogger(syncWriter{&mu, &buf}, 0, "json"))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				get("/api/search?first_name=torquil&surname=macsween")
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				get("/api/debug/traces")
				get("/metrics")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			resp, err := http.Post(ts.URL+"/api/ingest?sync=1", "application/json",
				strings.NewReader(torquilDeathJSON))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The ring must hold well-formed traces after the storm.
	resp, err := http.Get(ts.URL + "/api/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var traces []obs.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatalf("bad traces JSON after concurrency: %v", err)
	}
	if len(traces) == 0 {
		t.Fatal("no traces recorded during the storm")
	}
	for _, tr := range traces {
		if tr.TraceID == "" || len(tr.Spans) == 0 {
			t.Fatalf("malformed trace in ring: %+v", tr)
		}
	}
}
