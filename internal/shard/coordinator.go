package shard

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
)

// Coordinator-level metrics in the default registry, exposed at /metrics.
// Latency families use the log-scale bucket layout: post-PR-4 hot-path
// searches are sub-millisecond, and on the coarse linear DefBuckets every
// one of them collapsed into the lowest bucket.
var (
	mShardCount = obs.Default.Gauge("snaps_shard_count",
		"Number of serving shards in the current coordinator.")
	mScatterSeconds = obs.Default.Histogram("snaps_shard_scatter_seconds",
		"Wall-clock duration of one scatter-gather search across all shards.", obs.LatencyBuckets)
	mMergeSeconds = obs.Default.Histogram("snaps_shard_merge_seconds",
		"Duration of the k-way merge of per-shard rankings after the scatter.", obs.LatencyBuckets)
	mStragglerSeconds = obs.Default.Histogram("snaps_shard_straggler_seconds",
		"Per scatter: slowest shard search minus the median one — scatter time lost to the laggard.",
		obs.LatencyBuckets)
	mFlushTouched = obs.Default.Counter("snaps_shard_flush_touched_total",
		"Shards rebuilt (incrementally or fully) by ingest flushes.")
	mFlushReused = obs.Default.Counter("snaps_shard_flush_reused_total",
		"Shards carried over untouched by ingest flushes.")

	mShardSearchSeconds = obs.Default.HistogramVec("snaps_shard_search_seconds",
		"Per-shard search duration under the scatter-gather coordinator.",
		obs.LatencyBuckets, "shard")
	mShardQueueWait = obs.Default.HistogramVec("snaps_shard_queue_wait_seconds",
		"Delay between scatter start and a worker picking up the shard's search.",
		obs.LatencyBuckets, "shard")
	mStragglerTotal = obs.Default.CounterVec("snaps_shard_straggler_total",
		"Scatters in which the shard was the slowest one.", "shard")
)

// shardMetrics are the per-shard series, pre-created at shard construction
// so the serving hot path never takes the registry (or vec) lock.
type shardMetrics struct {
	searches      *obs.Counter
	rebuilds      *obs.Counter
	nodes         *obs.Gauge
	gen           *obs.Gauge
	searchSeconds *obs.Histogram
	queueWait     *obs.Histogram
	straggles     *obs.Counter
}

func metricsFor(id int) *shardMetrics {
	sid := strconv.Itoa(id)
	l := obs.Label("shard", sid)
	return &shardMetrics{
		searches: obs.Default.Counter("snaps_shard_searches_total{"+l+"}",
			"Searches served by the shard under the scatter-gather coordinator."),
		rebuilds: obs.Default.Counter("snaps_shard_rebuilds_total{"+l+"}",
			"Times an ingest flush rebuilt the shard's indexes."),
		nodes: obs.Default.Gauge("snaps_shard_nodes{"+l+"}",
			"Pedigree entities owned by the shard."),
		gen: obs.Default.Gauge("snaps_shard_generation{"+l+"}",
			"Shard-local generation: advances only when a flush touches the shard."),
		searchSeconds: mShardSearchSeconds.With(sid),
		queueWait:     mShardQueueWait.With(sid),
		straggles:     mStragglerTotal.With(sid),
	}
}

// Shard is one self-contained serving partition: the subset-filtered
// keyword and similarity indexes over its owned entities, a query engine
// bound to them, and a shard-local result cache keyed by a shard-local
// generation. A Shard is immutable once published; flushes that touch it
// produce a replacement, flushes that don't reuse it by reference (its
// engine keeps serving against the graph it was built from, which is
// provably identical on every owned entity).
type Shard struct {
	ID     int
	Engine *query.Engine
	// Keyword and Similar are the engine's indexes, kept on the shard so
	// the next flush can patch them per-partition via index.UpdateSubset.
	Keyword *index.Keyword
	Similar *index.Similarity
	// Generation is the shard-local rebuild counter: it advances only when
	// a flush touches this shard's partition, so the shard's result cache
	// (and its stale-while-revalidate window) invalidate only when the
	// shard's contents actually changed.
	Generation uint64
	// NodeCount is the number of owned pedigree entities.
	NodeCount int

	cache *query.ResultCache
	met   *shardMetrics
}

// Options tunes Partition.
type Options struct {
	// Shards is the partition count; values below 1 mean 1.
	Shards int
	// SimThreshold is the similarity-index threshold s_t (paper: 0.5).
	SimThreshold float64
	// Workers bounds the scatter fan-out per search; 0 means
	// min(GOMAXPROCS, shards).
	Workers int
	// CacheEntries is the TOTAL result-cache budget, split evenly across
	// the shards (with a small per-shard floor); 0 disables caching.
	CacheEntries int
	// StaleServe enables stale-while-revalidate on the per-shard caches.
	StaleServe bool
}

// Coordinator fronts the shards: it fans a search out across them on a
// bounded worker pool and merges the per-shard top-m rankings. Like the
// Serving bundle that carries it, a Coordinator is immutable once
// published — Advance produces a fresh one — so a reader that loaded it
// sees one consistent generation of every shard, never a torn mix.
type Coordinator struct {
	graph  *pedigree.Graph
	shards []*Shard
	// owners maps every NodeID of graph to its owning shard; counts is the
	// per-shard node tally.
	owners []int32
	counts []int
	// generation is the global serving generation the coordinator was
	// published under (the pipeline's snapshot counter).
	generation   uint64
	workers      int
	simThreshold float64
	staleServe   bool
}

// Partition builds a coordinator over the graph from scratch: every
// shard's indexes are a fresh subset build. With Shards <= 1 the single
// shard's indexes are exactly index.Build's output.
func Partition(g *pedigree.Graph, o Options) *Coordinator {
	defer obs.StartStage("shard_partition").Stop()
	n := o.Shards
	if n < 1 {
		n = 1
	}
	c := &Coordinator{
		graph:        g,
		workers:      o.Workers,
		simThreshold: o.SimThreshold,
		staleServe:   o.StaleServe,
	}
	c.owners, c.counts = computeOwners(g, n)
	perCache := perShardCache(o.CacheEntries, n)
	c.shards = make([]*Shard, n)
	for s := 0; s < n; s++ {
		cache := query.NewResultCache(perCache)
		if c.staleServe {
			cache.EnableStaleServe()
		}
		c.shards[s] = c.buildShard(s, cache, metricsFor(s))
	}
	mShardCount.Set(int64(n))
	return c
}

// perShardCache splits a total cache budget across n shards, rounding up
// with a floor so small budgets still cache something per shard.
func perShardCache(total, n int) int {
	if total <= 0 {
		return 0
	}
	per := (total + n - 1) / n
	if per < 64 {
		per = 64
	}
	return per
}

// buildShard constructs shard s's indexes and engine from scratch over the
// coordinator's graph at shard generation 0.
func (c *Coordinator) buildShard(s int, cache *query.ResultCache, met *shardMetrics) *Shard {
	var keep func(pedigree.NodeID) bool
	if len(c.counts) > 1 {
		sid := int32(s)
		keep = func(id pedigree.NodeID) bool { return c.owners[id] == sid }
	}
	k, sim := index.BuildSubset(c.graph, keep, c.simThreshold)
	sh := &Shard{
		ID: s, Keyword: k, Similar: sim,
		Engine:    query.NewEngine(c.graph, k, sim),
		NodeCount: c.counts[s],
		cache:     cache, met: met,
	}
	c.wireEngine(sh)
	met.nodes.Set(int64(sh.NodeCount))
	met.gen.Set(int64(sh.Generation))
	return sh
}

// wireEngine attaches the shard's cache and generation to its engine.
func (c *Coordinator) wireEngine(sh *Shard) {
	if sh.cache == nil {
		return
	}
	sh.Engine.Cache = sh.cache
	sh.Engine.Generation = sh.Generation
	sh.Engine.StaleServe = c.staleServe
}

// AdvanceStats reports how a flush was absorbed by the partitions.
type AdvanceStats struct {
	// Touched and Reused count shards rebuilt vs carried over by
	// reference.
	Touched, Reused int
	// DirtyNodes is the global count of entities whose record set changed.
	DirtyNodes int
}

// Advance publishes a flush: it classifies the new graph against the
// served one, rebuilds ONLY the shards whose partitions the flush touched
// (via index.UpdateSubset, so even a touched shard patches rather than
// rebuilds when it can), and reuses every untouched shard by reference.
//
// Reuse is sound because ownership is a pure function of a node's record
// set (Owner): a shard is untouched exactly when every entity it owned is
// clean with an unchanged NodeID and no entity moved in — so its indexes,
// its engine, and even the old graph its engine reads are byte-identical
// on every owned entity, and its shard-local generation (hence its result
// cache) legitimately survives the global swap. generation is the global
// snapshot counter of the bundle the new coordinator will be published in.
func (c *Coordinator) Advance(newG *pedigree.Graph, generation uint64) (*Coordinator, AdvanceStats) {
	defer obs.StartStage("shard_advance").Stop()
	n := len(c.shards)
	nc := &Coordinator{
		graph:        newG,
		generation:   generation,
		workers:      c.workers,
		simThreshold: c.simThreshold,
		staleServe:   c.staleServe,
	}
	nc.owners, nc.counts = computeOwners(newG, n)

	oldToNew, isDirty, dirty := index.Classify(newG, c.graph)
	touched := make([]bool, n)
	for i := range newG.Nodes {
		if isDirty[i] {
			touched[nc.owners[i]] = true
		}
	}
	// A previous node whose clean counterpart has a different NodeID — or
	// none at all — invalidates the posting lists of the shard that owned
	// it (its clean counterpart, if any, is owned by the same shard, since
	// clean means an identical record set).
	for j := range oldToNew {
		if oldToNew[j] != pedigree.NodeID(j) {
			touched[c.owners[j]] = true
		}
	}

	st := AdvanceStats{DirtyNodes: dirty}
	nc.shards = make([]*Shard, n)
	for s := 0; s < n; s++ {
		prev := c.shards[s]
		if !touched[s] {
			nc.shards[s] = prev
			st.Reused++
			mFlushReused.Inc()
			continue
		}
		nc.shards[s] = nc.advanceShard(s, prev, c.graph)
		st.Touched++
		mFlushTouched.Inc()
	}
	mShardCount.Set(int64(n))
	return nc, st
}

// advanceShard rebuilds one touched shard against the new graph, patching
// the previous generation's subset indexes where possible. The shard-local
// generation advances by one and the carried-over cache invalidates
// against it.
func (nc *Coordinator) advanceShard(s int, prev *Shard, prevG *pedigree.Graph) *Shard {
	sid := int32(s)
	keep := func(id pedigree.NodeID) bool { return nc.owners[id] == sid }
	k, sim, _ := index.UpdateSubset(nc.graph, keep, prevG, prev.Keyword, prev.Similar, nc.simThreshold)
	eng := query.NewEngine(nc.graph, k, sim)
	eng.Weights = prev.Engine.Weights
	eng.TopM = prev.Engine.TopM
	sh := &Shard{
		ID: s, Keyword: k, Similar: sim, Engine: eng,
		Generation: prev.Generation + 1,
		NodeCount:  nc.counts[s],
		cache:      prev.cache, met: prev.met,
	}
	nc.wireEngine(sh)
	if sh.cache != nil {
		sh.cache.Invalidate(sh.Generation)
	}
	sh.met.rebuilds.Inc()
	sh.met.nodes.Set(int64(sh.NodeCount))
	sh.met.gen.Set(int64(sh.Generation))
	return sh
}

// NumShards returns the partition count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Shards returns the shard slice; callers must treat it as read-only.
func (c *Coordinator) Shards() []*Shard { return c.shards }

// Graph returns the global pedigree graph the coordinator serves.
func (c *Coordinator) Graph() *pedigree.Graph { return c.graph }

// Generation returns the global serving generation the coordinator was
// published under.
func (c *Coordinator) Generation() uint64 { return c.generation }

// TopM returns the bounded-ranking depth shared by every shard engine.
func (c *Coordinator) TopM() int { return c.shards[0].Engine.TopM }

// SetTopM sets the bounded-ranking depth on every shard engine. It is not
// safe to call once the coordinator is serving; tests and start-up
// configuration only.
func (c *Coordinator) SetTopM(m int) {
	for _, sh := range c.shards {
		sh.Engine.TopM = m
	}
}

// OwnerOf returns the shard owning a node of the coordinator's graph.
func (c *Coordinator) OwnerOf(id pedigree.NodeID) int { return int(c.owners[id]) }

// Search fans the query out and merges, without a caller trace.
func (c *Coordinator) Search(q query.Query) []query.Result {
	return c.SearchContext(context.Background(), q)
}

// SearchContext fans the query out across the shards on a bounded worker
// pool, then merges the per-shard rankings into the global top-m. Every
// entity's score is computed entirely within its owning shard with the
// same floating-point operations as the single-shard engine (the shard's
// similarity lists are order-preserving subsets of the global ones), the
// shards' node sets are disjoint, and any entity in the global top-m is
// necessarily within its own shard's top-m — so the merged ranking is
// byte-identical to the single-shard engine's.
func (c *Coordinator) SearchContext(ctx context.Context, q query.Query) []query.Result {
	if len(c.shards) == 1 {
		sh := c.shards[0]
		sh.met.searches.Inc()
		return sh.Engine.SearchContext(ctx, q)
	}
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "scatter")
	parts := make([][]query.Result, len(c.shards))
	durs := make([]time.Duration, len(c.shards))
	workers := c.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.shards) {
		workers = len(c.shards)
	}
	if workers <= 1 {
		for i, sh := range c.shards {
			parts[i], durs[i] = c.searchShard(ctx, sh, q, start)
		}
	} else {
		var next atomic.Int32
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(c.shards) {
						return
					}
					parts[i], durs[i] = c.searchShard(ctx, c.shards[i], q, start)
				}
			}()
		}
		wg.Wait()
	}
	mergeStart := time.Now()
	out := mergeRanked(parts, c.TopM())
	merge := time.Since(mergeStart)
	mMergeSeconds.ObserveDuration(merge)

	// Straggler accounting: the scatter finishes with its slowest shard, so
	// the time the laggard spent beyond the (lower-)median shard is scatter
	// latency that better balance would recover. The laggard's identity and
	// generation land on the scatter span, which the slow-query WARN logs in
	// full — the forensics name the shard, not just the total.
	slow := 0
	for i := range durs {
		if durs[i] > durs[slow] {
			slow = i
		}
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	lag := durs[slow] - sorted[(len(sorted)-1)/2]
	mStragglerSeconds.ObserveDuration(lag)
	c.shards[slow].met.straggles.Inc()

	sp.SetAttr("shards", int64(len(c.shards)))
	sp.SetAttr("results", int64(len(out)))
	sp.SetAttr("merge_us", merge.Microseconds())
	sp.SetAttr("straggler_shard", int64(slow))
	sp.SetAttr("straggler_generation", int64(c.shards[slow].Generation))
	sp.SetAttr("straggler_us", lag.Microseconds())
	sp.End()
	mScatterSeconds.ObserveDurationExemplar(time.Since(start), obs.TraceIDFromContext(ctx))
	return out
}

// searchShard runs the query on one shard under its own child span, timing
// both the queue wait (scatter start to worker pickup) and the search
// itself into the shard's pre-created series.
func (c *Coordinator) searchShard(ctx context.Context, sh *Shard, q query.Query, scatterStart time.Time) ([]query.Result, time.Duration) {
	wait := time.Since(scatterStart)
	sh.met.queueWait.ObserveDuration(wait)
	ctx, sp := obs.StartSpan(ctx, "shard_search")
	sp.SetAttr("shard", int64(sh.ID))
	sp.SetAttr("shard_generation", int64(sh.Generation))
	sp.SetAttr("queue_wait_us", wait.Microseconds())
	t0 := time.Now()
	res := sh.Engine.SearchContext(ctx, q)
	dur := time.Since(t0)
	sh.met.searchSeconds.ObserveDuration(dur)
	sh.met.searches.Inc()
	sp.End()
	return res, dur
}

// resultBefore is the global ranking order: score descending, NodeID
// ascending — exactly the query engine's tie-break comparator.
func resultBefore(a, b query.Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Entity < b.Entity
}

// mergeRanked k-way merges the per-shard rankings (each already sorted by
// resultBefore) into the global top-m; m <= 0 merges everything. The input
// slices may be shared with per-shard caches and are never mutated.
func mergeRanked(parts [][]query.Result, m int) []query.Result {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	n := total
	if m > 0 && m < n {
		n = m
	}
	out := make([]query.Result, 0, n)
	idx := make([]int, len(parts))
	for len(out) < n {
		best := -1
		for pi, p := range parts {
			if idx[pi] >= len(p) {
				continue
			}
			if best < 0 || resultBefore(p[idx[pi]], parts[best][idx[best]]) {
				best = pi
			}
		}
		if best < 0 {
			break
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}

// Explain routes the explanation to the entity's owning shard; the shard's
// similarity lists are order-preserving subsets of the global ones
// restricted to values the shard indexes — which includes every value the
// entity itself carries — so the explanation is byte-identical to the
// single-shard engine's.
func (c *Coordinator) Explain(q query.Query, id pedigree.NodeID) query.Explanation {
	return c.shards[c.owners[id]].Engine.Explain(q, id)
}
