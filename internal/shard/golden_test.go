// External tests locking down the scatter-gather contract: for any shard
// count the coordinator must serve byte-identical rankings, scores, and
// explanations to the single-shard engine, on the seed data set and on one
// grown through incremental ingest flushes (both the fresh-partition and
// the Advance-incremental paths).
package shard_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/shard"
)

// goldenShardCounts is the matrix the equivalence suite runs: the legacy
// count, powers of two, and a prime that leaves the hash's modulo nothing
// to hide behind.
var goldenShardCounts = []int{1, 2, 4, 7}

// builtCase simulates, resolves, and builds the pedigree graph once per
// scale.
func builtCase(t *testing.T, scale float64) (*model.Dataset, *er.EntityStore, *pedigree.Graph) {
	t.Helper()
	p := dataset.Generate(dataset.IOS().Scaled(scale))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	return p.Dataset, pr.Result.Store, pedigree.Build(p.Dataset, pr.Result.Store)
}

// goldenQueries samples name queries across the graph plus refinement,
// typo, and absent-value probes — every one must retrieve entities from
// several shards so the merge path is genuinely exercised.
func goldenQueries(g *pedigree.Graph) []query.Query {
	var qs []query.Query
	seen := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if len(n.FirstNames) == 0 || len(n.Surnames) == 0 {
			continue
		}
		first, sur := n.FirstNames[0], n.Surnames[0]
		qs = append(qs, query.Query{FirstName: first, Surname: sur})
		qs = append(qs, query.Query{FirstName: first, Surname: sur, Gender: model.Female})
		if n.MinYear != 0 {
			qs = append(qs, query.Query{FirstName: first, Surname: sur,
				YearFrom: n.MinYear - 2, YearTo: n.MinYear + 2})
		}
		if len(sur) >= 5 {
			qs = append(qs, query.Query{FirstName: first, Surname: sur[:len(sur)-1] + "x"})
		}
		seen++
		if seen >= 10 {
			break
		}
	}
	qs = append(qs, query.Query{FirstName: "nosuchname", Surname: "nosuchsurname"})
	return qs
}

// render serialises a ranking into the byte-comparable golden form: entity
// id, the full float64 score, and the per-field match flags.
func render(results []query.Result) string {
	out := ""
	for _, r := range results {
		out += fmt.Sprintf("%d %.17g", r.Entity, r.Score)
		for f := index.Field(0); f < index.NumFields; f++ {
			if exact, ok := r.Matched[f]; ok {
				out += fmt.Sprintf(" %v=%v", f, exact)
			}
		}
		out += "\n"
	}
	return out
}

// checkPartition asserts the ownership function covers every node exactly
// once: owners in range, per-shard node counts summing to the graph.
func checkPartition(t *testing.T, c *shard.Coordinator, g *pedigree.Graph) {
	t.Helper()
	total := 0
	perShard := make([]int, c.NumShards())
	for i := range g.Nodes {
		s := c.OwnerOf(pedigree.NodeID(i))
		if s < 0 || s >= c.NumShards() {
			t.Fatalf("node %d owned by out-of-range shard %d", i, s)
		}
		perShard[s]++
	}
	for s, sh := range c.Shards() {
		if sh.NodeCount != perShard[s] {
			t.Fatalf("shard %d reports %d nodes, owns %d", s, sh.NodeCount, perShard[s])
		}
		total += sh.NodeCount
	}
	if total != len(g.Nodes) {
		t.Fatalf("shards own %d nodes, graph has %d", total, len(g.Nodes))
	}
}

// TestScatterGatherGoldenEquivalence is the cross-shard golden guard: for
// every shard count the coordinator's full result sets — scores, ordering,
// match flags, and explain output — must be byte-identical to the
// single-shard engine's, at several ranking depths and on both the
// uncached and cached paths.
func TestScatterGatherGoldenEquivalence(t *testing.T) {
	_, _, g := builtCase(t, 0.05)
	kidx, sidx := index.Build(g, 0.5)
	ref := query.NewEngine(g, kidx, sidx)
	qs := goldenQueries(g)
	if len(qs) == 0 {
		t.Skip("no searchable entities")
	}

	for _, n := range goldenShardCounts {
		// Uncached coordinator for the top-m sweep: a result cache would
		// otherwise hand back rankings trimmed at an earlier depth.
		c := shard.Partition(g, shard.Options{Shards: n, SimThreshold: 0.5})
		if c.NumShards() != n {
			t.Fatalf("Partition(%d) built %d shards", n, c.NumShards())
		}
		checkPartition(t, c, g)

		for _, topM := range []int{20, 3, 0} {
			ref.TopM = topM
			c.SetTopM(topM)
			for qi, q := range qs {
				want := render(ref.Search(q))
				got := render(c.Search(q))
				if got != want {
					t.Fatalf("shards=%d topM=%d query %d (%+v):\nsingle-shard:\n%s\nscatter-gather:\n%s",
						n, topM, qi, q, want, got)
				}
			}
		}

		// Cached coordinator at the default depth: the miss fills the
		// per-shard caches, the hit must replay the identical ranking.
		ref.TopM = 20
		cc := shard.Partition(g, shard.Options{Shards: n, SimThreshold: 0.5, CacheEntries: 256})
		for qi, q := range qs {
			want := render(ref.Search(q))
			if miss := render(cc.Search(q)); miss != want {
				t.Fatalf("shards=%d query %d: cache-miss ranking diverged", n, qi)
			}
			if hit := render(cc.Search(q)); hit != want {
				t.Fatalf("shards=%d query %d: cache-hit ranking diverged", n, qi)
			}
		}

		// Explanations route to the owning shard and must match the
		// single-shard engine structurally, entity by entity.
		for _, q := range qs[:3] {
			res := ref.Search(q)
			for ri, r := range res {
				if ri >= 3 {
					break
				}
				want := ref.Explain(q, r.Entity)
				got := c.Explain(q, r.Entity)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d query %+v entity %d: explanations differ\nwant %+v\ngot  %+v",
						n, q, r.Entity, want, got)
				}
			}
		}
	}
}

// TestScatterGatherResultsDeepEqual double-checks structural equality
// (maps included) between the coordinator and the engine on the default
// configuration.
func TestScatterGatherResultsDeepEqual(t *testing.T) {
	_, _, g := builtCase(t, 0.03)
	kidx, sidx := index.Build(g, 0.5)
	ref := query.NewEngine(g, kidx, sidx)
	qs := goldenQueries(g)
	for _, n := range goldenShardCounts {
		c := shard.Partition(g, shard.Options{Shards: n, SimThreshold: 0.5})
		for qi, q := range qs {
			want := ref.Search(q)
			got := c.Search(q)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("shards=%d query %d (%+v): results differ\nwant %+v\ngot  %+v",
					n, qi, q, want, got)
			}
		}
	}
}

// growCert builds the ingest certificate used to grow the seed data set:
// some names reuse existing records (dirtying their clusters), some are
// novel (new entities, new index values).
func growCert(baby, father, mother [2]string, year int) *ingest.Certificate {
	return &ingest.Certificate{
		Type: "birth", Year: year, Address: "3 golden brae",
		Roles: map[string]ingest.Person{
			"Bb": {FirstName: baby[0], Surname: baby[1], Gender: "m"},
			"Bf": {FirstName: father[0], Surname: father[1]},
			"Bm": {FirstName: mother[0], Surname: mother[1]},
		},
	}
}

// TestScatterGatherGoldenEquivalenceGrown replays incremental ingest
// flushes through a sharded pipeline and asserts, for every shard count,
// that the Advance-incremental coordinator, a from-scratch partition of
// the grown graph, and a from-scratch single-shard engine all serve
// byte-identical rankings — including for names only the grown generation
// knows.
func TestScatterGatherGoldenEquivalenceGrown(t *testing.T) {
	d, st, _ := builtCase(t, 0.03)
	r0, r1 := &d.Records[0], &d.Records[len(d.Records)/2]
	rounds := [][]*ingest.Certificate{
		{
			growCert([2]string{r0.FirstName(), r0.Surname()},
				[2]string{r1.FirstName(), r1.Surname()},
				[2]string{r1.FirstName(), r0.Surname()}, 1890),
			growCert([2]string{"zebedee", "quixworth"},
				[2]string{"barnabus", "quixworth"},
				[2]string{"philomena", "quixworth"}, 1891),
		},
		{
			growCert([2]string{"zebedee", "quixworth"},
				[2]string{"barnabus", "quixworth"},
				[2]string{r0.FirstName(), r0.Surname()}, 1893),
		},
	}

	for _, n := range goldenShardCounts {
		opts := shard.Options{Shards: n, SimThreshold: 0.5, CacheEntries: 256}
		sv0 := ingest.NewShardedServing(d, st, opts)
		cfg := ingest.DefaultConfig()
		cfg.BatchSize = 1 << 20 // flush only when the test says so
		cfg.MaxAge = time.Hour
		pipe, err := ingest.NewPipeline(sv0, nil, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}

		for round, batch := range rounds {
			for _, c := range batch {
				if err := pipe.Submit(c); err != nil {
					t.Fatal(err)
				}
			}
			if err := pipe.Flush(); err != nil {
				t.Fatal(err)
			}

			sv := pipe.Serving()
			if sv.Shards == nil {
				t.Fatal("sharded pipeline published a bundle without a coordinator")
			}
			checkPartition(t, sv.Shards, sv.Graph)
			// Ground truth: a from-scratch single-shard rebuild of the same
			// grown generation; cross-check: a from-scratch partition of it.
			ref := ingest.NewServing(sv.Dataset, sv.Store, 0.5).Engine
			fresh := shard.Partition(sv.Graph, shard.Options{Shards: n, SimThreshold: 0.5})
			qs := append(goldenQueries(sv.Graph),
				query.Query{FirstName: "zebedee", Surname: "quixworth"},
				query.Query{FirstName: "zebedee", Surname: "quixwor"}, // typo: lazy memo path
				query.Query{FirstName: "philomena", Surname: "quixworth"})
			for qi, q := range qs {
				want := render(ref.Search(q))
				if got := render(sv.Shards.Search(q)); got != want {
					t.Fatalf("shards=%d round %d query %d (%+v): incremental coordinator diverged\nwant:\n%s\ngot:\n%s",
						n, round, qi, q, want, got)
				}
				if got := render(fresh.Search(q)); got != want {
					t.Fatalf("shards=%d round %d query %d (%+v): fresh partition diverged\nwant:\n%s\ngot:\n%s",
						n, round, qi, q, want, got)
				}
			}
		}
		pipe.Close()
	}
}
