package shard

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
)

// TestRouteProperties pins the router contract: deterministic, in range,
// degenerate at one shard, and sensitive to both name components.
func TestRouteProperties(t *testing.T) {
	keys := [][2]string{
		{"mary", "macdonald"}, {"", ""}, {"mary", ""}, {"", "macdonald"},
		{"seán", "ó dómhnaill"}, {"a", "b"}, {"ab", ""}, {"a", "b|c"},
	}
	for _, k := range keys {
		if got := Route(k[0], k[1], 1); got != 0 {
			t.Fatalf("Route(%q, %q, 1) = %d, want 0", k[0], k[1], got)
		}
		for _, n := range []int{2, 3, 7, 16, 64} {
			a := Route(k[0], k[1], n)
			if a < 0 || a >= n {
				t.Fatalf("Route(%q, %q, %d) = %d out of range", k[0], k[1], n, a)
			}
			if b := Route(k[0], k[1], n); b != a {
				t.Fatalf("Route(%q, %q, %d) unstable: %d then %d", k[0], k[1], n, a, b)
			}
		}
	}
	// The separator matters: ("ab", "c") and ("a", "bc") are different
	// blocking keys and must hash as such.
	same := true
	for _, n := range []int{16, 64, 1024} {
		if Route("ab", "c", n) != Route("a", "bc", n) {
			same = false
		}
	}
	if same {
		t.Fatal("Route ignores the first/surname boundary")
	}
}

// refMerge is the oracle for mergeRanked: concatenate, full sort with the
// engine's comparator, trim to m.
func refMerge(parts [][]query.Result, m int) []query.Result {
	var all []query.Result
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.SliceStable(all, func(i, j int) bool { return resultBefore(all[i], all[j]) })
	if m > 0 && len(all) > m {
		all = all[:m]
	}
	if len(all) == 0 {
		return nil
	}
	return all
}

// TestMergeRankedMatchesSort drives the k-way merge against the sort oracle
// over randomised shard rankings, including score ties broken by entity id,
// empty shards, and every top-m regime.
func TestMergeRankedMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nparts := 1 + rng.Intn(8)
		parts := make([][]query.Result, nparts)
		next := pedigree.NodeID(0)
		for p := range parts {
			n := rng.Intn(6)
			for i := 0; i < n; i++ {
				// Coarse scores force frequent ties across shards.
				parts[p] = append(parts[p], query.Result{
					Entity: next, Score: float64(rng.Intn(4)) * 10,
				})
				next++
			}
			// Each shard's list arrives already ranked.
			sort.Slice(parts[p], func(i, j int) bool { return resultBefore(parts[p][i], parts[p][j]) })
		}
		for _, m := range []int{0, 1, 3, 20} {
			var snapshot [][]query.Result
			for _, p := range parts {
				snapshot = append(snapshot, append([]query.Result(nil), p...))
			}
			got := mergeRanked(parts, m)
			want := refMerge(parts, m)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d m=%d: merge %v, sort %v", trial, m, got, want)
			}
			// The inputs may be shared with per-shard caches: never mutated.
			for p := range parts {
				if !reflect.DeepEqual(parts[p], snapshot[p]) {
					t.Fatalf("trial %d m=%d: mergeRanked mutated shard %d's ranking", trial, m, p)
				}
			}
		}
	}
}

// TestPerShardCache pins the budget split: ceil division with a floor, and
// zero stays zero (caching disabled).
func TestPerShardCache(t *testing.T) {
	cases := []struct{ total, n, want int }{
		{0, 4, 0}, {-1, 4, 0}, {4096, 4, 1024}, {4097, 4, 1025},
		{100, 4, 64}, {1, 7, 64}, {4096, 1, 4096},
	}
	for _, c := range cases {
		if got := perShardCache(c.total, c.n); got != c.want {
			t.Fatalf("perShardCache(%d, %d) = %d, want %d", c.total, c.n, got, c.want)
		}
	}
}
