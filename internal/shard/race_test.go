// External -race stress closing the loop on the sharded serving tier:
// concurrent scatter-gather searches — cache hits, cache misses, and
// similarity-memo stampedes — run while the ingest pipeline flushes and
// republishes coordinators underneath. The assertions pin the RCU
// contract: a held coordinator keeps serving one immutable generation of
// every shard (never a torn mix), the freshly published coordinator sees
// its own certificate immediately (no stale cache entry survives a
// touched shard's rebuild), and untouched shards are carried over by
// reference with their generations intact.
package shard_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/shard"
)

// testOptions is the stress configuration: strict cache mode (no
// stale-serve), so the assertions can demand zero superseded rankings.
func testOptions(n, cacheEntries int) shard.Options {
	return shard.Options{Shards: n, SimThreshold: 0.5, CacheEntries: cacheEntries}
}

// testShards reads SNAPS_TEST_SHARDS (the CI shard matrix) with a default
// of 4, so the same stress runs single-shard and sharded.
func testShards(t *testing.T) int {
	t.Helper()
	v := os.Getenv("SNAPS_TEST_SHARDS")
	if v == "" {
		return 4
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("bad SNAPS_TEST_SHARDS=%q", v)
	}
	return n
}

// markerCert is the certificate ingested at step i; the child's first name
// is unique per step so searching it tells exactly which generations can
// see it, and the per-step surname spreads consecutive flushes across
// different shards (staggered per-shard rebuilds).
func markerCert(i int) *ingest.Certificate {
	sur := fmt.Sprintf("markerclan%d", i%5)
	return &ingest.Certificate{
		Type: "birth", Year: 1870 + i%40, Address: "staffin",
		Roles: map[string]ingest.Person{
			"Bb": {FirstName: fmt.Sprintf("tormod%d", i), Surname: sur, Gender: "m"},
			"Bm": {FirstName: "peigi", Surname: sur},
			"Bf": {FirstName: "iain", Surname: sur},
		},
	}
}

// TestScatterGatherStressNoTornGenerations runs hot and cold searchers
// against whatever coordinator is currently published while the driver
// ingests one marker certificate per step and flushes. Strict cache mode
// (no stale-serve): after a swap no request may observe a superseded
// ranking, and a reader holding the old coordinator must keep getting its
// old, internally consistent answer.
func TestScatterGatherStressNoTornGenerations(t *testing.T) {
	nshards := testShards(t)
	d, st, _ := builtCase(t, 0.03)
	sv0 := ingest.NewShardedServing(d, st, testOptions(nshards, 256))

	cfg := ingest.DefaultConfig()
	cfg.BatchSize = 1 << 20 // flush only when the driver says so
	pipe, err := ingest.NewPipeline(sv0, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	g0 := sv0.Graph
	var hotFirst, hotSur string
	for i := range g0.Nodes {
		n := &g0.Nodes[i]
		if len(n.FirstNames) > 0 && len(n.Surnames) > 0 {
			hotFirst, hotSur = n.FirstNames[0], n.Surnames[0]
			break
		}
	}
	if hotFirst == "" {
		t.Fatal("no searchable entity")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Hot searchers: the same query on the current coordinator — a cache
	// miss on the first probe of each touched generation, hits after.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pipe.Serving().Shards.Search(query.Query{FirstName: hotFirst, Surname: hotSur})
			}
		}()
	}
	// Cold searchers: per-iteration unique surnames (cache and memo misses
	// on every shard) plus one shared novel surname stampeding the memo.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c := pipe.Serving().Shards
				c.Search(query.Query{FirstName: hotFirst,
					Surname: fmt.Sprintf("%s%d_%d", hotSur, w, i)})
				c.Search(query.Query{FirstName: hotFirst, Surname: "zzstampede"})
			}
		}(w)
	}

	hasMarker := func(sv *ingest.Serving, res []query.Result, first string) bool {
		for _, r := range res {
			for _, fn := range sv.Graph.Node(r.Entity).FirstNames {
				if fn == first {
					return true
				}
			}
		}
		return false
	}

	const steps = 6
	for i := 0; i < steps; i++ {
		first := fmt.Sprintf("tormod%d", i)
		markerQ := query.Query{FirstName: first, Surname: fmt.Sprintf("markerclan%d", i%5)}

		before := pipe.Serving()
		// Two searches: a cache miss, then a hit of the soon-stale entry.
		for pass := 0; pass < 2; pass++ {
			if hasMarker(before, before.Shards.Search(markerQ), first) {
				t.Fatalf("step %d pass %d: marker visible before ingesting it", i, pass)
			}
		}
		beforeRanking := render(before.Shards.Search(markerQ))

		if err := pipe.Submit(markerCert(i)); err != nil {
			t.Fatalf("step %d: submit: %v", i, err)
		}
		if err := pipe.Flush(); err != nil {
			t.Fatalf("step %d: flush: %v", i, err)
		}

		after := pipe.Serving()
		if after.Generation != before.Generation+1 {
			t.Fatalf("step %d: generation %d -> %d, want +1", i, before.Generation, after.Generation)
		}
		if after.Shards.Generation() != after.Generation {
			t.Fatalf("step %d: coordinator generation %d, bundle %d",
				i, after.Shards.Generation(), after.Generation)
		}
		// The new coordinator must see its own certificate on both the
		// cache-miss and cache-hit path: a stale entry surviving a touched
		// shard's rebuild would serve the marker-less ranking.
		for pass := 0; pass < 2; pass++ {
			if !hasMarker(after, after.Shards.Search(markerQ), first) {
				t.Fatalf("step %d pass %d: generation %d served a ranking without its own certificate",
					i, pass, after.Generation)
			}
		}
		// A reader still holding the superseded coordinator keeps getting
		// the identical pre-flush answer — shards are immutable, so there is
		// no window where it could see half-old half-new partitions.
		if got := render(before.Shards.Search(markerQ)); got != beforeRanking {
			t.Fatalf("step %d: held coordinator's ranking changed under it:\nbefore:\n%s\nafter:\n%s",
				i, beforeRanking, got)
		}

		// Staggered rebuild accounting: every shard was either carried over
		// by reference with its generation intact, or republished with a
		// strictly higher shard-local generation; at least one was touched.
		touched := 0
		for s := 0; s < before.Shards.NumShards(); s++ {
			prev, next := before.Shards.Shards()[s], after.Shards.Shards()[s]
			switch {
			case prev == next:
				// reused: same immutable shard, same generation
			case next.Generation > prev.Generation:
				touched++
			default:
				t.Fatalf("step %d shard %d: republished without advancing its generation (%d -> %d)",
					i, s, prev.Generation, next.Generation)
			}
		}
		if touched == 0 {
			t.Fatalf("step %d: flush touched no shard yet the marker appeared", i)
		}
	}
	close(stop)
	wg.Wait()
}
