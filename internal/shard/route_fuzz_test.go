package shard

import (
	"strings"
	"testing"
)

// FuzzShardRoute fuzzes the routing function on an arbitrary name key and
// shard count: the route must be stable across calls, in range for any
// count, and re-partitioning a key set 1 -> N -> 1 must lose no records —
// every key lands in exactly one shard and the union of the shards is the
// original set (count and identity preserved).
func FuzzShardRoute(f *testing.F) {
	f.Add("mary", "macdonald", uint8(4), "john|smith\nanne|smith")
	f.Add("", "", uint8(0), "")
	f.Add("seán", "ó dómhnaill", uint8(7), "a|b\na|b\nc|")
	f.Fuzz(func(t *testing.T, first, surname string, nRaw uint8, keyBlob string) {
		n := int(nRaw)%16 + 1

		// Stability and range for the fuzzed key.
		a := Route(first, surname, n)
		if a != Route(first, surname, n) {
			t.Fatalf("Route(%q, %q, %d) unstable", first, surname, n)
		}
		if a < 0 || a >= n {
			t.Fatalf("Route(%q, %q, %d) = %d out of [0,%d)", first, surname, n, a, n)
		}
		if Route(first, surname, 1) != 0 {
			t.Fatalf("Route(%q, %q, 1) != 0", first, surname)
		}

		// Re-partition a whole key set 1 -> n -> 1. Keys are identified by
		// their line index: the same record must land in exactly one shard,
		// and merging the shards back must reproduce the full set.
		lines := strings.Split(keyBlob, "\n")
		shards := make([][]int, n)
		for id, line := range lines {
			fn, sn, _ := strings.Cut(line, "|")
			s := Route(fn, sn, n)
			if s < 0 || s >= n {
				t.Fatalf("record %d routed out of range: %d", id, s)
			}
			shards[s] = append(shards[s], id)
		}
		seen := make(map[int]bool, len(lines))
		total := 0
		for _, ids := range shards {
			total += len(ids)
			for _, id := range ids {
				if seen[id] {
					t.Fatalf("record %d assigned to more than one shard", id)
				}
				seen[id] = true
			}
		}
		if total != len(lines) || len(seen) != len(lines) {
			t.Fatalf("re-partition lost records: %d in shards, %d distinct, %d submitted",
				total, len(seen), len(lines))
		}
	})
}
