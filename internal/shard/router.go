// Package shard partitions the serving tier into N self-contained shards,
// each owning a disjoint subset of the pedigree entities with its own
// keyword index, similarity index, generation stamp, and result cache, all
// fronted by a coordinator that fans a search out across the shards and
// merges the per-shard bounded top-m rankings into the exact ranking the
// single-shard engine would produce.
//
// Partitioning is by blocking-key hash: an entity is owned by the shard
// its canonical record's name key (first name + surname, the same key the
// LSH blocker groups records by) hashes to. Entity resolution and the
// pedigree graph stay GLOBAL — LSH blocking emits candidate pairs across
// different blocking keys (the surname-only band pass guarantees it), so
// resolving per-partition would split entities and break byte-equivalence
// with the single-shard engine. What shards own is the serving state built
// FROM the global graph: per-value posting lists filtered to owned
// entities, similarity lists computed over the shard's own value universe
// (order-preserving subsets of the global lists), and a shard-local result
// cache keyed by a shard-local generation that only advances when a flush
// actually touches the partition.
package shard

import (
	"github.com/snaps/snaps/internal/pedigree"
)

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Route maps a blocking name key to a shard in [0, shards). The hash is
// FNV-1a over "first|surname" — the same composite key internal/blocking
// uses — computed without materialising the concatenation. Route is a pure
// function: the same key and shard count always land on the same shard,
// and any key lands in range for any positive shard count.
func Route(firstName, surname string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint64(fnvOffset)
	for i := 0; i < len(firstName); i++ {
		h ^= uint64(firstName[i])
		h *= fnvPrime
	}
	h ^= uint64('|')
	h *= fnvPrime
	for i := 0; i < len(surname); i++ {
		h ^= uint64(surname[i])
		h *= fnvPrime
	}
	return int(h % uint64(shards))
}

// Owner returns the shard owning a pedigree node: the route of the name
// key of the node's lowest-numbered record. Records are append-only and a
// record never changes its name, so ownership is a pure function of the
// node's record set — a node whose record set is unchanged across
// generations (a "clean" node in index.Classify terms) is owned by the
// same shard in both, which is what lets an ingest flush reuse untouched
// shards wholesale.
func Owner(g *pedigree.Graph, n *pedigree.Node, shards int) int {
	if shards <= 1 || len(n.Records) == 0 {
		return 0
	}
	min := n.Records[0]
	for _, r := range n.Records[1:] {
		if r < min {
			min = r
		}
	}
	rec := g.Dataset.Record(min)
	return Route(rec.FirstName(), rec.Surname(), shards)
}

// computeOwners assigns every node of g to its owning shard and counts the
// nodes per shard.
func computeOwners(g *pedigree.Graph, shards int) (owners []int32, counts []int) {
	owners = make([]int32, len(g.Nodes))
	counts = make([]int, shards)
	for i := range g.Nodes {
		s := Owner(g, &g.Nodes[i], shards)
		owners[i] = int32(s)
		counts[s]++
	}
	return owners, counts
}
