// External test locking down the coordinator's per-shard scatter
// telemetry: after multi-shard searches, /metrics-visible series exist per
// shard (search latency, queue wait) and per scatter (merge time,
// straggler lag), and the straggler counter attributes lag to a shard.
package shard_test

import (
	"strconv"
	"strings"
	"testing"

	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/shard"
)

// defaultSamples renders the default registry and returns series -> value.
func defaultSamples(t *testing.T) map[string]float64 {
	t.Helper()
	var b strings.Builder
	if err := obs.Default.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(b.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		out[name] = v
	}
	return out
}

func stragglerAttribution(samples map[string]float64, nshards int) float64 {
	total := 0.0
	for i := 0; i < nshards; i++ {
		total += samples[`snaps_shard_straggler_total{shard="`+strconv.Itoa(i)+`"}`]
	}
	return total
}

func TestScatterTelemetryPerShard(t *testing.T) {
	const nshards = 4
	_, _, g := builtCase(t, 0.06)
	c := shard.Partition(g, shard.Options{Shards: nshards, SimThreshold: 0.5})

	before := defaultSamples(t)

	queries := goldenQueries(g)
	if len(queries) > 20 {
		queries = queries[:20]
	}
	for _, q := range queries {
		c.Search(q)
	}

	after := defaultSamples(t)
	n := float64(len(queries))

	// Every shard served every scatter: its latency and queue-wait
	// histograms exist and carry the searches.
	for i := 0; i < nshards; i++ {
		sid := strconv.Itoa(i)
		for _, fam := range []string{"snaps_shard_search_seconds", "snaps_shard_queue_wait_seconds"} {
			series := fam + `_count{shard="` + sid + `"}`
			if after[series]-before[series] < n {
				t.Errorf("%s grew by %v, want >= %v", series, after[series]-before[series], n)
			}
		}
	}
	// Each scatter records one merge duration and one straggler lag, and
	// attributes the lag to exactly one shard.
	if got := after["snaps_shard_merge_seconds_count"] - before["snaps_shard_merge_seconds_count"]; got < n {
		t.Errorf("merge histogram grew by %v, want >= %v", got, n)
	}
	if got := after["snaps_shard_straggler_seconds_count"] - before["snaps_shard_straggler_seconds_count"]; got < n {
		t.Errorf("straggler histogram grew by %v, want >= %v", got, n)
	}
	if got := stragglerAttribution(after, nshards) - stragglerAttribution(before, nshards); got < n {
		t.Errorf("straggler attribution counters grew by %v, want >= %v", got, n)
	}

	// The single-shard fast path stays out of the scatter accounting.
	single := shard.Partition(g, shard.Options{Shards: 1, SimThreshold: 0.5})
	b2 := defaultSamples(t)["snaps_shard_straggler_seconds_count"]
	single.Search(queries[0])
	if a2 := defaultSamples(t)["snaps_shard_straggler_seconds_count"]; a2 != b2 {
		t.Errorf("single-shard search recorded straggler lag (%v -> %v)", b2, a2)
	}
}
