package simcache

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/snaps/snaps/internal/strsim"
	"github.com/snaps/snaps/internal/symbol"
)

// Features holds everything the similarity kernels derive from one distinct
// interned value. All fields are immutable after construction; the token
// substrings share the interned string's backing bytes.
type Features struct {
	// Str is the interned string itself, cached to skip the symbol-table
	// snapshot load on every kernel call.
	Str string
	// Bigrams is the sorted distinct bigram-ID signature of Str (the
	// integer form of strsim.BigramSet), for merge-based Jaccard.
	Bigrams []strsim.BigramID
	// Tokens is Str split on spaces and tabs in order of appearance, the
	// operand shape of the Monge-Elkan loop.
	Tokens []string
	// TokenSyms is the sorted distinct symbols of Tokens, for merge-based
	// token Jaccard.
	TokenSyms []symbol.ID
	// Soundex is the four-character phonetic code of Str.
	Soundex string
	// HasSpace mirrors strsim's NameSim trigger: Str contains a space
	// byte (tabs deliberately excluded, matching the string kernel).
	HasSpace bool
}

// The slab is a chunked array of atomically published feature pointers
// indexed by symbol ID. Chunks are fixed-size so a published *Features is
// never moved; the chunk directory is copy-on-grow behind an atomic
// pointer, so readers never lock. Symbol IDs are append-only and dense,
// which is what makes a flat slab (rather than a hash map) the right shape.
const (
	featChunkBits = 12
	featChunkSize = 1 << featChunkBits
)

type featChunk [featChunkSize]atomic.Pointer[Features]

var featSlab struct {
	mu     sync.Mutex
	chunks atomic.Pointer[[]*featChunk]
}

func init() {
	empty := []*featChunk{}
	featSlab.chunks.Store(&empty)
}

// Feat returns the derived features of id, computing and publishing them on
// first use. Concurrent first uses may compute twice; the computation is a
// pure function of the interned string, so whichever pointer wins the CAS
// carries identical content.
func Feat(id symbol.ID) *Features {
	ci := int(id) >> featChunkBits
	chunks := *featSlab.chunks.Load()
	if ci >= len(chunks) {
		chunks = growChunks(ci)
	}
	slot := &chunks[ci][int(id)&(featChunkSize-1)]
	if f := slot.Load(); f != nil {
		return f
	}
	f := computeFeatures(id)
	if !slot.CompareAndSwap(nil, f) {
		return slot.Load()
	}
	return f
}

// growChunks extends the chunk directory to cover chunk index ci and
// returns the new directory. The old directory slice is never mutated, so
// concurrent readers holding it stay correct (they just re-grow).
func growChunks(ci int) []*featChunk {
	featSlab.mu.Lock()
	defer featSlab.mu.Unlock()
	cur := *featSlab.chunks.Load()
	if ci < len(cur) {
		return cur
	}
	next := make([]*featChunk, ci+1)
	copy(next, cur)
	for i := len(cur); i <= ci; i++ {
		next[i] = new(featChunk)
	}
	featSlab.chunks.Store(&next)
	return next
}

func computeFeatures(id symbol.ID) *Features {
	s := symbol.Str(id)
	f := &Features{
		Str:      s,
		HasSpace: strings.IndexByte(s, ' ') >= 0,
		Soundex:  strsim.Soundex(s),
		Tokens:   strsim.Fields(s),
	}
	if len(s) >= 2 {
		f.Bigrams = strsim.AppendBigramIDs(make([]strsim.BigramID, 0, len(s)-1), s)
	}
	if len(f.Tokens) > 0 {
		// Single-token values are their own token, already interned; only
		// genuinely multi-token values add token symbols to the table.
		ts := make([]symbol.ID, len(f.Tokens))
		for i, t := range f.Tokens {
			ts[i] = symbol.Intern(t)
		}
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
		out := ts[:1]
		for _, t := range ts[1:] {
			if t != out[len(out)-1] {
				out = append(out, t)
			}
		}
		f.TokenSyms = out
	}
	return f
}
