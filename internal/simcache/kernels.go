package simcache

import (
	"github.com/snaps/snaps/internal/strsim"
	"github.com/snaps/snaps/internal/symbol"
)

// NameSim is strsim.NameSim over symbols: Jaro-Winkler raised to the
// symmetric Monge-Elkan score when either value is multi-token, memoised
// process-wide per distinct symbol pair.
func NameSim(a, b symbol.ID) float64 {
	if a == b {
		if a == symbol.None {
			return 0
		}
		return 1
	}
	if a == symbol.None || b == symbol.None {
		// One side empty: Jaro-Winkler and Monge-Elkan both score 0, no
		// need to touch the memo.
		return 0
	}
	key := PackKey(a, b)
	if v, ok := nameMemo.get(key); ok {
		mMemoHits.Inc()
		return v
	}
	mMemoMisses.Inc()
	fa, fb := Feat(a), Feat(b)
	s := strsim.JaroWinkler(fa.Str, fb.Str)
	if fa.HasSpace || fb.HasSpace {
		if me := strsim.SymMongeElkanTokens(fa.Tokens, fb.Tokens); me > s {
			s = me
		}
	}
	nameMemo.put(key, s)
	return s
}

// Jaccard is strsim.Jaccard over symbols: the Jaccard coefficient of the
// two values' distinct bigram sets, computed as a linear merge over the
// cached sorted bigram-ID signatures and memoised per distinct pair.
func Jaccard(a, b symbol.ID) float64 {
	if a == b {
		if a == symbol.None {
			return 0
		}
		return 1 // strsim.Jaccard's a==b fast path, including sub-bigram strings
	}
	if a == symbol.None || b == symbol.None {
		return 0 // one side has no bigrams
	}
	key := PackKey(a, b)
	if v, ok := jacMemo.get(key); ok {
		mMemoHits.Inc()
		return v
	}
	mMemoMisses.Inc()
	s := strsim.JaccardBigramIDs(Feat(a).Bigrams, Feat(b).Bigrams)
	jacMemo.put(key, s)
	return s
}

// TokenJaccard is strsim.TokenJaccard over symbols: the Jaccard coefficient
// of the two values' distinct whitespace-token sets, computed as a linear
// merge over the cached sorted token symbols and memoised per distinct pair.
func TokenJaccard(a, b symbol.ID) float64 {
	if a == b {
		if len(Feat(a).TokenSyms) == 0 {
			return 0 // whitespace-only value: no tokens, no evidence
		}
		return 1
	}
	if a == symbol.None || b == symbol.None {
		return 0
	}
	key := PackKey(a, b)
	if v, ok := tokenMemo.get(key); ok {
		mMemoHits.Inc()
		return v
	}
	mMemoMisses.Inc()
	ta, tb := Feat(a).TokenSyms, Feat(b).TokenSyms
	s := tokenJaccardMerge(ta, tb)
	tokenMemo.put(key, s)
	return s
}

func tokenJaccardMerge(a, b []symbol.ID) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Soundex returns the cached phonetic code of a symbol.
func Soundex(a symbol.ID) string { return Feat(a).Soundex }
