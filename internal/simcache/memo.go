package simcache

import (
	"sync"

	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/symbol"
)

var (
	mMemoHits = obs.Default.Counter("snaps_simkernel_memo_hits_total",
		"Symbol-pair similarity kernel calls answered from the process-wide memo.")
	mMemoMisses = obs.Default.Counter("snaps_simkernel_memo_misses_total",
		"Symbol-pair similarity kernel calls that computed and stored a fresh score.")
)

// PackKey packs a canonical (unordered) symbol pair into one uint64. All
// memoised kernels are symmetric, so (a,b) and (b,a) share a slot. Both
// symbols must be non-None, which guarantees the key is never zero — the
// open-addressed tables use zero as the empty-slot sentinel.
func PackKey(a, b symbol.ID) uint64 {
	if b < a {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// memoTable is a sharded open-addressed uint64→float64 hash table. Shards
// take an RWMutex: scoring is read-mostly after warm-up (Zipf-repeated
// value pairs are the whole point of memoising), so readers share. Probing
// is linear over power-of-two tables; keys are pre-mixed with splitmix64 so
// the low bits used for slots and the high bits used for shard selection
// are independently distributed.
type memoTable struct {
	shards [memoShardCount]memoShard
}

const memoShardCount = 128

type memoShard struct {
	mu   sync.RWMutex
	keys []uint64
	vals []float64
	n    int
}

// mix is the splitmix64 finaliser, the same mixer the blocking layer seeds
// its MinHash permutations with.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *memoTable) get(key uint64) (float64, bool) {
	h := mix(key)
	s := &t.shards[(h>>57)&(memoShardCount-1)]
	s.mu.RLock()
	if len(s.keys) == 0 {
		s.mu.RUnlock()
		return 0, false
	}
	mask := h & uint64(len(s.keys)-1)
	for i := mask; ; i = (i + 1) & uint64(len(s.keys)-1) {
		k := s.keys[i]
		if k == key {
			v := s.vals[i]
			s.mu.RUnlock()
			return v, true
		}
		if k == 0 {
			break
		}
	}
	s.mu.RUnlock()
	return 0, false
}

func (t *memoTable) put(key uint64, v float64) {
	h := mix(key)
	s := &t.shards[(h>>57)&(memoShardCount-1)]
	s.mu.Lock()
	if len(s.keys) == 0 {
		s.keys = make([]uint64, 1024)
		s.vals = make([]float64, 1024)
	} else if 10*(s.n+1) >= 7*len(s.keys) {
		s.grow()
	}
	s.insert(h, key, v)
	s.mu.Unlock()
}

// insert places key under mixed hash h; racing writers of the same key
// (both missed before either published) store identical values, so keeping
// the first copy is correct.
func (s *memoShard) insert(h, key uint64, v float64) {
	mask := uint64(len(s.keys) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch s.keys[i] {
		case 0:
			s.keys[i] = key
			s.vals[i] = v
			s.n++
			return
		case key:
			return
		}
	}
}

func (s *memoShard) grow() {
	oldKeys, oldVals := s.keys, s.vals
	s.keys = make([]uint64, 2*len(oldKeys))
	s.vals = make([]float64, 2*len(oldVals))
	s.n = 0
	for i, k := range oldKeys {
		if k != 0 {
			s.insert(mix(k), k, oldVals[i])
		}
	}
}

// Entries returns the number of memoised pairs across all shards (for
// tests and footprint accounting).
func (t *memoTable) entries() int {
	total := 0
	for i := range t.shards {
		t.shards[i].mu.RLock()
		total += t.shards[i].n
		t.shards[i].mu.RUnlock()
	}
	return total
}

// One table per kernel: the same symbol pair means different things under
// NameSim, bigram Jaccard, and token Jaccard. NameSim is shared by the
// first-name and surname attributes — it is the same pure function of the
// two strings, so cross-attribute hits are free wins.
var (
	nameMemo  memoTable
	jacMemo   memoTable
	tokenMemo memoTable
)

// MemoEntries reports the total memoised pair count across all kernels.
func MemoEntries() int {
	return nameMemo.entries() + jacMemo.entries() + tokenMemo.entries()
}
