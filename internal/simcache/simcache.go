// Package simcache makes the similarity layer symbol-native: every string
// that reaches a hot comparison kernel in the offline build is already an
// interned symbol (internal/symbol), so the derived features the kernels
// need — bigram signatures, whitespace token splits, Soundex codes — are
// pure functions of the symbol and can be computed once per distinct value
// for the life of the process instead of once per candidate pair.
//
// Two structures implement that:
//
//   - a feature slab (features.go): an append-only, lock-free-read table
//     keyed by symbol ID holding each distinct value's derived features,
//     filled lazily on first use;
//   - a process-wide memo (memo.go): sharded open-addressed hash tables
//     keyed by the packed (symbolA, symbolB) pair, one table per kernel,
//     so a repeated value pair is scored once across all workers, all
//     chunks, and all Extend flushes.
//
// The kernels (kernels.go) are drop-in symbol-typed equivalents of
// strsim.NameSim, strsim.Jaccard, and strsim.TokenJaccard: for every pair
// of symbols they return the bit-identical float of the string kernel on
// the symbols' strings (pinned by property and fuzz tests in this package).
package simcache
