package simcache

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/snaps/snaps/internal/strsim"
	"github.com/snaps/snaps/internal/symbol"
)

// kernelCorpus exercises every dispatch edge the symbol kernels share with
// their string counterparts: empty, sub-bigram, whitespace-only, tab-vs-
// space tokenisation (HasSpace checks only ' ', Fields splits on both),
// non-ASCII bytes, and >64-byte strings that push Jaro onto its scratch
// path.
var kernelCorpus = []string{
	"",
	"x",
	"jo",
	"john",
	"jon",
	"johnathan",
	"mary ann",
	"maryann",
	"ann mary",
	"van den berg",
	"van der berg",
	"  ",
	" leading",
	"trailing ",
	"a\tb",
	"a b",
	"jörg",
	"jürgen",
	"Ødegård",
	"farm labourer",
	"labourer farm",
	"farm  labourer",
	strings.Repeat("wilhelmina jacoba ", 5),
	strings.Repeat("x", 70),
}

// TestKernelsMatchStringForms pins each symbol kernel to the strsim
// function it replaces, over the full corpus cross product (both argument
// orders, including equal pairs, so the fast paths are covered too).
func TestKernelsMatchStringForms(t *testing.T) {
	ids := make([]symbol.ID, len(kernelCorpus))
	for i, s := range kernelCorpus {
		ids[i] = symbol.Intern(s)
	}
	for i, a := range kernelCorpus {
		for j, b := range kernelCorpus {
			if got, want := NameSim(ids[i], ids[j]), strsim.NameSim(a, b); got != want {
				t.Errorf("NameSim(%q, %q) = %v, strsim = %v", a, b, got, want)
			}
			if got, want := Jaccard(ids[i], ids[j]), strsim.Jaccard(a, b); got != want {
				t.Errorf("Jaccard(%q, %q) = %v, strsim = %v", a, b, got, want)
			}
			if got, want := TokenJaccard(ids[i], ids[j]), strsim.TokenJaccard(a, b); got != want {
				t.Errorf("TokenJaccard(%q, %q) = %v, strsim = %v", a, b, got, want)
			}
		}
		if got, want := Soundex(ids[i]), strsim.Soundex(a); got != want {
			t.Errorf("Soundex(%q) = %q, strsim = %q", a, got, want)
		}
	}
}

// TestKernelsMatchStringFormsRandom repeats the equivalence over random
// strings so the memo's open-addressed probing is exercised well past one
// slot per shard.
func TestKernelsMatchStringFormsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randomVal := func() string {
		n := rng.Intn(30)
		buf := make([]byte, n)
		for i := range buf {
			switch rng.Intn(8) {
			case 0:
				buf[i] = ' '
			default:
				buf[i] = byte('a' + rng.Intn(6)) // tiny alphabet: frequent repeats
			}
		}
		return string(buf)
	}
	for i := 0; i < 5000; i++ {
		a, b := randomVal(), randomVal()
		ia, ib := symbol.Intern(a), symbol.Intern(b)
		if got, want := NameSim(ia, ib), strsim.NameSim(a, b); got != want {
			t.Fatalf("NameSim(%q, %q) = %v, strsim = %v", a, b, got, want)
		}
		if got, want := Jaccard(ia, ib), strsim.Jaccard(a, b); got != want {
			t.Fatalf("Jaccard(%q, %q) = %v, strsim = %v", a, b, got, want)
		}
		if got, want := TokenJaccard(ia, ib), strsim.TokenJaccard(a, b); got != want {
			t.Fatalf("TokenJaccard(%q, %q) = %v, strsim = %v", a, b, got, want)
		}
	}
}

// TestMemoStableUnderRepeats checks that the memo answers repeated calls
// with the identical value (a corrupted slot would silently skew scores
// everywhere) and that it actually stores entries.
func TestMemoStableUnderRepeats(t *testing.T) {
	a := symbol.Intern("memorepeat alpha")
	b := symbol.Intern("memorepeat beta")
	first := NameSim(a, b)
	for i := 0; i < 100; i++ {
		if got := NameSim(a, b); got != first {
			t.Fatalf("NameSim repeat %d = %v, first = %v", i, got, first)
		}
	}
	if MemoEntries() == 0 {
		t.Fatal("MemoEntries() = 0 after memoised comparisons")
	}
}

// TestFeatConcurrent hammers the feature slab and the memo from many
// goroutines; racing CAS fills must all observe one immutable Features
// value per symbol. Run under -race in CI.
func TestFeatConcurrent(t *testing.T) {
	vals := make([]symbol.ID, 512)
	for i := range vals {
		vals[i] = symbol.Intern("concurrent value " + string(rune('a'+i%26)) + string(rune('0'+i%10)))
	}
	want := make([]float64, len(vals))
	for i := range vals {
		want[i] = NameSim(vals[i], vals[(i+1)%len(vals)])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range vals {
				fa, fb := Feat(vals[i]), Feat(vals[(i+1)%len(vals)])
				if fa == nil || fb == nil {
					t.Error("Feat returned nil")
					return
				}
				if got := NameSim(vals[i], vals[(i+1)%len(vals)]); got != want[i] {
					t.Errorf("concurrent NameSim %d = %v, want %v", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPackKeyCanonical checks the unordered-pair packing: symmetric,
// never zero for valid pairs, injective over swapped pairs.
func TestPackKeyCanonical(t *testing.T) {
	if PackKey(3, 7) != PackKey(7, 3) {
		t.Fatal("PackKey is not symmetric")
	}
	if PackKey(1, 1) == 0 {
		t.Fatal("PackKey of a valid pair must be nonzero (zero is the empty-slot sentinel)")
	}
	if PackKey(3, 7) == PackKey(3, 8) {
		t.Fatal("PackKey collides on distinct pairs")
	}
}
