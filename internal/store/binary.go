// The SNAPSBINv02 compact snapshot format.
//
// Wire layout (all multi-byte integers are unsigned varints unless noted;
// zigzag varints are marked "svarint"):
//
//	offset  size  field
//	0       8     magic "SNAPSBIN"
//	8       3     magic "v02"
//	11      ...   sections, each:
//	                1       tag byte
//	                varint  body length in bytes
//	                ...     body (exactly that many bytes)
//
// Sections appear in tag order and end with tagEnd (zero-length body):
//
//	tagMeta (1):    name string (varint len + bytes)
//	tagSymtab (2):  count, then per symbol: varint len + bytes. Local id 0
//	                is reserved for the empty string and not stored; the
//	                first stored symbol is local id 1, in first-use order
//	                over records then certificate causes.
//	tagRecords (3): count, then per record (ids are implicit 0..count-1):
//	                  cert varint, role byte, gender byte, flags byte,
//	                  first/sur/addr/occ local symbol ids (varints),
//	                  year svarint, truth svarint,
//	                  [flagGeo]   lat, lon (8 bytes each, IEEE 754 LE),
//	                  [flagHint]  birth hint svarint
//	tagCerts (4):   count, then per cert (ids implicit): type byte,
//	                  year svarint, age svarint, cause local symbol id,
//	                  role count byte, then per role: role byte, rec varint
//	tagClusters(5): count, then per cluster: len, then record ids as
//	                  svarint deltas from the previous id (first from -1)
//	tagEnd (6):     empty
//
// The decoder streams section bodies through a byte-counted reader: every
// allocation is bounded by bytes actually read, never by an
// attacker-controlled count or length prefix (counts are validated against
// the remaining body bytes — each element costs at least one byte — and
// strings are read in small chunks). Corrupt input of every kind returns
// an error; it must never panic or over-allocate.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/symbol"
)

var (
	// magicV02 is the full 11-byte magic; magicV02Head is its first 8
	// bytes, the prefix Read dispatches on.
	magicV02     = []byte("SNAPSBINv02")
	magicV02Head = [8]byte{'S', 'N', 'A', 'P', 'S', 'B', 'I', 'N'}
)

// Section tags.
const (
	tagMeta     = 1
	tagSymtab   = 2
	tagRecords  = 3
	tagCerts    = 4
	tagClusters = 5
	tagEnd      = 6
)

// Record flags.
const (
	flagGeo  = 1 << 0
	flagHint = 1 << 1
)

// maxStringLen bounds any single stored string (names, addresses, causes,
// the data set name). Real values are tens of bytes; anything past this is
// corruption, rejected before the bytes are allocated.
const maxStringLen = 1 << 16

// ---------------------------------------------------------------- writer

// binWriter accumulates one section body and flushes it length-prefixed.
type binWriter struct {
	w   *bufio.Writer
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func (b *binWriter) uvarint(v uint64) {
	n := binary.PutUvarint(b.tmp[:], v)
	b.buf = append(b.buf, b.tmp[:n]...)
}

func (b *binWriter) svarint(v int64) {
	n := binary.PutVarint(b.tmp[:], v)
	b.buf = append(b.buf, b.tmp[:n]...)
}

func (b *binWriter) byte(v byte) { b.buf = append(b.buf, v) }

func (b *binWriter) string(s string) {
	b.uvarint(uint64(len(s)))
	b.buf = append(b.buf, s...)
}

func (b *binWriter) float(f float64) {
	var raw [8]byte
	binary.LittleEndian.PutUint64(raw[:], math.Float64bits(f))
	b.buf = append(b.buf, raw[:]...)
}

// flush writes the pending body as a section and resets the buffer.
func (b *binWriter) flush(tag byte) error {
	if err := b.w.WriteByte(tag); err != nil {
		return err
	}
	n := binary.PutUvarint(b.tmp[:], uint64(len(b.buf)))
	if _, err := b.w.Write(b.tmp[:n]); err != nil {
		return err
	}
	if _, err := b.w.Write(b.buf); err != nil {
		return err
	}
	b.buf = b.buf[:0]
	return nil
}

// localSyms assigns dense per-file symbol ids in first-use order, so the
// stored table holds exactly the symbols this snapshot references and the
// file is byte-identical regardless of the process-global table's history.
type localSyms struct {
	ids  map[symbol.ID]uint64
	strs []string
}

func (l *localSyms) local(id symbol.ID) uint64 {
	if id == symbol.None {
		return 0
	}
	if lid, ok := l.ids[id]; ok {
		return lid
	}
	lid := uint64(len(l.strs) + 1)
	l.ids[id] = lid
	l.strs = append(l.strs, symbol.Str(id))
	return lid
}

// writeBinary emits the v02 stream (magic included, no buffering of the
// whole payload: one section body at a time).
func writeBinary(w *bufio.Writer, s *Snapshot) error {
	if _, err := w.Write(magicV02); err != nil {
		return err
	}
	b := &binWriter{w: w}
	d := s.Dataset

	// Collect the symbol universe in first-use order: record attributes,
	// then certificate causes. Causes are interned here (they are plain
	// strings on model.Certificate) so the symtab covers them too.
	ls := &localSyms{ids: map[symbol.ID]uint64{}}
	type recSyms struct{ first, sur, addr, occ uint64 }
	rs := make([]recSyms, len(d.Records))
	for i := range d.Records {
		r := &d.Records[i]
		rs[i] = recSyms{ls.local(r.First), ls.local(r.Sur), ls.local(r.Addr), ls.local(r.Occ)}
	}
	causes := make([]uint64, len(d.Certificates))
	for i := range d.Certificates {
		causes[i] = ls.local(symbol.Intern(d.Certificates[i].Cause))
	}

	// tagMeta
	b.string(d.Name)
	if err := b.flush(tagMeta); err != nil {
		return err
	}
	// tagSymtab
	b.uvarint(uint64(len(ls.strs)))
	for _, v := range ls.strs {
		b.string(v)
	}
	if err := b.flush(tagSymtab); err != nil {
		return err
	}
	// tagRecords
	b.uvarint(uint64(len(d.Records)))
	for i := range d.Records {
		r := &d.Records[i]
		b.uvarint(uint64(r.Cert))
		b.byte(byte(r.Role))
		b.byte(byte(r.Gender))
		var flags byte
		if r.Lat != 0 || r.Lon != 0 {
			flags |= flagGeo
		}
		if r.BirthHint != 0 {
			flags |= flagHint
		}
		b.byte(flags)
		b.uvarint(rs[i].first)
		b.uvarint(rs[i].sur)
		b.uvarint(rs[i].addr)
		b.uvarint(rs[i].occ)
		b.svarint(int64(r.Year))
		b.svarint(int64(r.Truth))
		if flags&flagGeo != 0 {
			b.float(r.Lat)
			b.float(r.Lon)
		}
		if flags&flagHint != 0 {
			b.svarint(int64(r.BirthHint))
		}
	}
	if err := b.flush(tagRecords); err != nil {
		return err
	}
	// tagCerts
	b.uvarint(uint64(len(d.Certificates)))
	for i := range d.Certificates {
		c := &d.Certificates[i]
		b.byte(byte(c.Type))
		b.svarint(int64(c.Year))
		b.svarint(int64(c.Age))
		b.uvarint(causes[i])
		nRoles := 0
		for role := model.Role(0); role < model.NumRoles; role++ {
			if _, ok := c.Roles[role]; ok {
				nRoles++
			}
		}
		b.byte(byte(nRoles))
		for role := model.Role(0); role < model.NumRoles; role++ {
			if rec, ok := c.Roles[role]; ok {
				b.byte(byte(role))
				b.uvarint(uint64(rec))
			}
		}
	}
	if err := b.flush(tagCerts); err != nil {
		return err
	}
	// tagClusters
	b.uvarint(uint64(len(s.Clusters)))
	for _, cluster := range s.Clusters {
		b.uvarint(uint64(len(cluster)))
		prev := int64(-1)
		for _, rec := range cluster {
			b.svarint(int64(rec) - prev)
			prev = int64(rec)
		}
	}
	if err := b.flush(tagClusters); err != nil {
		return err
	}
	return b.flush(tagEnd)
}

// ---------------------------------------------------------------- reader

// sectionReader is a byte-counted view of one section body. Every read is
// checked against the remaining byte budget, so a bogus length prefix can
// only make reads fail, never over-read into the next section; and every
// element decoded consumed at least one real byte, which is what caps
// count-driven allocations.
type sectionReader struct {
	r   *bufio.Reader
	rem uint64
}

func (s *sectionReader) ReadByte() (byte, error) {
	if s.rem == 0 {
		return 0, fmt.Errorf("store: section truncated")
	}
	c, err := s.r.ReadByte()
	if err != nil {
		return 0, fmt.Errorf("store: section truncated: %w", err)
	}
	s.rem--
	return c, nil
}

func (s *sectionReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(s)
	if err != nil {
		return 0, fmt.Errorf("store: bad varint: %w", err)
	}
	return v, nil
}

func (s *sectionReader) svarint() (int64, error) {
	v, err := binary.ReadVarint(s)
	if err != nil {
		return 0, fmt.Errorf("store: bad varint: %w", err)
	}
	return v, nil
}

// count reads an element count and validates it against the remaining
// bytes at the given minimum encoded size per element.
func (s *sectionReader) count(minElemBytes uint64) (int, error) {
	v, err := s.uvarint()
	if err != nil {
		return 0, err
	}
	if minElemBytes == 0 {
		minElemBytes = 1
	}
	// Divide instead of multiplying so a hostile count cannot overflow
	// the check itself.
	if v > s.rem/minElemBytes {
		return 0, fmt.Errorf("store: count %d exceeds section size", v)
	}
	return int(v), nil
}

// string reads a length-prefixed string, in bounded chunks so a bogus
// length cannot force a large allocation before hitting truncation.
func (s *sectionReader) string() (string, error) {
	n, err := s.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("store: string of %d bytes exceeds limit", n)
	}
	if n > s.rem {
		return "", fmt.Errorf("store: string of %d bytes exceeds section", n)
	}
	buf := make([]byte, 0, n)
	for uint64(len(buf)) < n {
		chunk := n - uint64(len(buf))
		if chunk > 4096 {
			chunk = 4096
		}
		start := len(buf)
		buf = buf[:uint64(start)+chunk]
		if _, err := io.ReadFull(s.r, buf[start:]); err != nil {
			return "", fmt.Errorf("store: string truncated: %w", err)
		}
		s.rem -= chunk
	}
	return string(buf), nil
}

func (s *sectionReader) float() (float64, error) {
	var raw [8]byte
	if s.rem < 8 {
		return 0, fmt.Errorf("store: section truncated")
	}
	if _, err := io.ReadFull(s.r, raw[:]); err != nil {
		return 0, fmt.Errorf("store: section truncated: %w", err)
	}
	s.rem -= 8
	return math.Float64frombits(binary.LittleEndian.Uint64(raw[:])), nil
}

// skipRest drains any unread body bytes (forward compatibility within a
// version is not attempted — sections are fully consumed or the file is
// rejected; this only discards padding-free exact bodies).
func (s *sectionReader) done() error {
	if s.rem != 0 {
		return fmt.Errorf("store: section has %d trailing bytes", s.rem)
	}
	return nil
}

// nextSection reads a section header. The 11-byte magic was already
// consumed by the caller.
func nextSection(r *bufio.Reader, wantTag byte) (*sectionReader, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("store: reading section tag: %w", err)
	}
	if tag != wantTag {
		return nil, fmt.Errorf("store: section tag %d, want %d", tag, wantTag)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("store: reading section length: %w", err)
	}
	return &sectionReader{r: r, rem: n}, nil
}

// readBinary decodes the stream after the first 8 magic bytes (already
// consumed and matched against magicV02Head by Read).
func readBinary(r *bufio.Reader) (*Snapshot, error) {
	var tail [3]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("store: reading header: %w", err)
	}
	if string(tail[:]) != string(magicV02[8:]) {
		return nil, fmt.Errorf("store: bad magic version %q", tail)
	}

	// tagMeta
	sec, err := nextSection(r, tagMeta)
	if err != nil {
		return nil, err
	}
	name, err := sec.string()
	if err != nil {
		return nil, err
	}
	if err := sec.done(); err != nil {
		return nil, err
	}

	// tagSymtab: local id -> global symbol id. Local 0 is the empty
	// string / symbol.None.
	sec, err = nextSection(r, tagSymtab)
	if err != nil {
		return nil, err
	}
	nSyms, err := sec.count(1)
	if err != nil {
		return nil, err
	}
	syms := make([]model.Sym, 0, capHint(nSyms))
	syms = append(syms, symbol.None)
	for i := 0; i < nSyms; i++ {
		v, err := sec.string()
		if err != nil {
			return nil, err
		}
		syms = append(syms, model.Intern(v))
	}
	if err := sec.done(); err != nil {
		return nil, err
	}
	sym := func(lid uint64) (model.Sym, error) {
		if lid >= uint64(len(syms)) {
			return 0, fmt.Errorf("store: symbol id %d of %d", lid, len(syms))
		}
		return syms[lid], nil
	}

	// tagRecords
	sec, err = nextSection(r, tagRecords)
	if err != nil {
		return nil, err
	}
	nRecs, err := sec.count(8) // minimum encoded record size
	if err != nil {
		return nil, err
	}
	d := &model.Dataset{Name: name}
	d.Records = make([]model.Record, 0, capHint(nRecs))
	for i := 0; i < nRecs; i++ {
		var rec model.Record
		rec.ID = model.RecordID(i)
		cert, err := sec.uvarint()
		if err != nil {
			return nil, err
		}
		rec.Cert = model.CertID(cert)
		role, err := sec.ReadByte()
		if err != nil {
			return nil, err
		}
		if model.Role(role) >= model.NumRoles {
			return nil, fmt.Errorf("store: record %d has role %d", i, role)
		}
		rec.Role = model.Role(role)
		gender, err := sec.ReadByte()
		if err != nil {
			return nil, err
		}
		rec.Gender = model.Gender(gender)
		flags, err := sec.ReadByte()
		if err != nil {
			return nil, err
		}
		for _, dst := range []*model.Sym{&rec.First, &rec.Sur, &rec.Addr, &rec.Occ} {
			lid, err := sec.uvarint()
			if err != nil {
				return nil, err
			}
			if *dst, err = sym(lid); err != nil {
				return nil, err
			}
		}
		year, err := sec.svarint()
		if err != nil {
			return nil, err
		}
		rec.Year = int(year)
		truth, err := sec.svarint()
		if err != nil {
			return nil, err
		}
		rec.Truth = model.PersonID(truth)
		if flags&flagGeo != 0 {
			if rec.Lat, err = sec.float(); err != nil {
				return nil, err
			}
			if rec.Lon, err = sec.float(); err != nil {
				return nil, err
			}
		}
		if flags&flagHint != 0 {
			hint, err := sec.svarint()
			if err != nil {
				return nil, err
			}
			rec.BirthHint = int(hint)
		}
		d.Records = append(d.Records, rec)
	}
	if err := sec.done(); err != nil {
		return nil, err
	}

	// tagCerts
	sec, err = nextSection(r, tagCerts)
	if err != nil {
		return nil, err
	}
	nCerts, err := sec.count(5)
	if err != nil {
		return nil, err
	}
	d.Certificates = make([]model.Certificate, 0, capHint(nCerts))
	for i := 0; i < nCerts; i++ {
		c := model.Certificate{ID: model.CertID(i)}
		typ, err := sec.ReadByte()
		if err != nil {
			return nil, err
		}
		c.Type = model.CertType(typ)
		year, err := sec.svarint()
		if err != nil {
			return nil, err
		}
		c.Year = int(year)
		age, err := sec.svarint()
		if err != nil {
			return nil, err
		}
		c.Age = int(age)
		lid, err := sec.uvarint()
		if err != nil {
			return nil, err
		}
		cause, err := sym(lid)
		if err != nil {
			return nil, err
		}
		c.Cause = symbol.Str(cause)
		nRoles, err := sec.ReadByte()
		if err != nil {
			return nil, err
		}
		if model.Role(nRoles) > model.NumRoles {
			return nil, fmt.Errorf("store: cert %d has %d roles", i, nRoles)
		}
		c.Roles = make(map[model.Role]model.RecordID, nRoles)
		for j := 0; j < int(nRoles); j++ {
			role, err := sec.ReadByte()
			if err != nil {
				return nil, err
			}
			if model.Role(role) >= model.NumRoles {
				return nil, fmt.Errorf("store: cert %d role %d invalid", i, role)
			}
			rec, err := sec.uvarint()
			if err != nil {
				return nil, err
			}
			if _, dup := c.Roles[model.Role(role)]; dup {
				return nil, fmt.Errorf("store: cert %d repeats role %d", i, role)
			}
			c.Roles[model.Role(role)] = model.RecordID(rec)
		}
		d.Certificates = append(d.Certificates, c)
	}
	if err := sec.done(); err != nil {
		return nil, err
	}

	// tagClusters
	sec, err = nextSection(r, tagClusters)
	if err != nil {
		return nil, err
	}
	nClusters, err := sec.count(3)
	if err != nil {
		return nil, err
	}
	clusters := make([][]model.RecordID, 0, capHint(nClusters))
	for i := 0; i < nClusters; i++ {
		n, err := sec.count(1)
		if err != nil {
			return nil, err
		}
		cluster := make([]model.RecordID, 0, capHint(n))
		prev := int64(-1)
		for j := 0; j < n; j++ {
			d, err := sec.svarint()
			if err != nil {
				return nil, err
			}
			prev += d
			if prev < 0 || prev > math.MaxInt32 {
				return nil, fmt.Errorf("store: cluster %d holds record id %d", i, prev)
			}
			cluster = append(cluster, model.RecordID(prev))
		}
		clusters = append(clusters, cluster)
	}
	if err := sec.done(); err != nil {
		return nil, err
	}

	// tagEnd
	sec, err = nextSection(r, tagEnd)
	if err != nil {
		return nil, err
	}
	if err := sec.done(); err != nil {
		return nil, err
	}

	if err := validate(d, clusters); err != nil {
		return nil, err
	}
	return &Snapshot{Dataset: d, Clusters: clusters}, nil
}

// capHint bounds pre-allocation from decoded counts: counts are already
// validated against section bytes, but very large honest sections should
// still grow geometrically instead of committing the full slab up front
// on hostile length-prefix + count combinations.
func capHint(n int) int {
	const max = 1 << 16
	if n > max {
		return max
	}
	return n
}
