package store

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/query"
)

// assertSnapshotsEqual compares every persisted field of two snapshots.
func assertSnapshotsEqual(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.Dataset.Name != want.Dataset.Name {
		t.Errorf("name %q vs %q", got.Dataset.Name, want.Dataset.Name)
	}
	if len(got.Dataset.Records) != len(want.Dataset.Records) {
		t.Fatalf("records %d vs %d", len(got.Dataset.Records), len(want.Dataset.Records))
	}
	for i := range want.Dataset.Records {
		if got.Dataset.Records[i] != want.Dataset.Records[i] {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, got.Dataset.Records[i], want.Dataset.Records[i])
		}
	}
	if len(got.Dataset.Certificates) != len(want.Dataset.Certificates) {
		t.Fatalf("certificates %d vs %d", len(got.Dataset.Certificates), len(want.Dataset.Certificates))
	}
	for i := range want.Dataset.Certificates {
		a, b := &want.Dataset.Certificates[i], &got.Dataset.Certificates[i]
		if a.ID != b.ID || a.Type != b.Type || a.Year != b.Year || a.Cause != b.Cause || a.Age != b.Age {
			t.Fatalf("certificate %d scalar fields differ", i)
		}
		if !reflect.DeepEqual(a.Roles, b.Roles) {
			t.Fatalf("certificate %d roles differ", i)
		}
	}
	if !reflect.DeepEqual(got.Clusters, want.Clusters) {
		t.Fatal("clusters differ")
	}
}

// TestV01RoundTrip writes the legacy gob format and reads it back through
// the dispatching Read: old snapshot files must keep loading, including
// their name strings (re-interned on read).
func TestV01RoundTrip(t *testing.T) {
	snap := resolvedSnapshot(t)
	var buf bytes.Buffer
	if err := WriteV01(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotsEqual(t, got, snap)
}

// TestV02SmallerThanV01 pins the point of the compact format: the same
// snapshot must encode substantially smaller than the gob.
func TestV02SmallerThanV01(t *testing.T) {
	snap := resolvedSnapshot(t)
	var v01, v02 bytes.Buffer
	if err := WriteV01(&v01, snap); err != nil {
		t.Fatal(err)
	}
	if err := Write(&v02, snap); err != nil {
		t.Fatal(err)
	}
	if v02.Len()*2 > v01.Len() {
		t.Fatalf("v02 is %d bytes, v01 %d: expected at least 2x smaller", v02.Len(), v01.Len())
	}
	t.Logf("v01 gob %d bytes, v02 binary %d bytes (%.1fx)", v01.Len(), v02.Len(), float64(v01.Len())/float64(v02.Len()))
}

// TestSnapshotGoldenEquivalence is the round-trip determinism guard: a
// data set saved as a v02 snapshot and reloaded must produce byte-identical
// ER output (re-running resolution from scratch on the reloaded records)
// and byte-identical search results (full result lists, scores included)
// vs. the in-memory original. The diet is representation-only.
func TestSnapshotGoldenEquivalence(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.05))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	snap := FromResult(p.Dataset, pr.Result.Store)

	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotsEqual(t, got, snap)

	// ER from scratch over the reloaded records matches ER over the
	// original records cluster for cluster.
	rerun := er.Run(got.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	if !reflect.DeepEqual(rerun.Result.Store.Clusters(), pr.Result.Store.Clusters()) {
		t.Fatal("ER output differs after snapshot round trip")
	}

	// Search over the restored pedigree graph matches search over the
	// original, result for result.
	origG := snap.PedigreeGraph()
	gotG := got.PedigreeGraph()
	origK, origS := index.Build(origG, 0.5)
	gotK, gotS := index.Build(gotG, 0.5)
	origE := query.NewEngine(origG, origK, origS)
	gotE := query.NewEngine(gotG, gotK, gotS)

	queries := goldenQueries(p.Dataset)
	for qi, q := range queries {
		a := origE.Search(q)
		b := gotE.Search(q)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d (%+v): results differ\n original %v\n restored %v", qi, q, a, b)
		}
	}
}

// goldenQueries derives a deterministic query mix from the data set: the
// first distinct name pairs per role, plus year-bounded and location
// variants.
func goldenQueries(d *model.Dataset) []query.Query {
	var qs []query.Query
	seen := map[string]bool{}
	for i := range d.Records {
		rec := &d.Records[i]
		if rec.First == 0 || rec.Sur == 0 {
			continue
		}
		key := rec.FirstName() + "|" + rec.Surname()
		if seen[key] {
			continue
		}
		seen[key] = true
		q := query.Query{FirstName: rec.FirstName(), Surname: rec.Surname()}
		switch len(qs) % 3 {
		case 1:
			q.Gender = rec.Gender
			q.YearFrom, q.YearTo = rec.Year-5, rec.Year+5
		case 2:
			q.Location = rec.Address()
		}
		qs = append(qs, q)
		if len(qs) >= 25 {
			break
		}
	}
	return qs
}

// TestV02TruncationsError feeds every prefix of a valid v02 stream to the
// reader: all must fail cleanly, none may panic.
func TestV02TruncationsError(t *testing.T) {
	snap := resolvedSnapshot(t)
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Step through prefixes; fine-grained near the front, sparser later.
	step := 1
	for n := 0; n < len(data)-1; n += step {
		if n > 256 {
			step = 997
		}
		if _, err := Read(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", n, len(data))
		}
	}
}

// TestV02CorruptHeadersError flips section tags and lengths.
func TestV02CorruptHeadersError(t *testing.T) {
	snap := resolvedSnapshot(t)
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for _, mut := range []struct {
		name string
		at   int
		b    byte
	}{
		{"magic-version", 9, '9'},
		{"first-tag", 11, 42},
		{"first-length", 12, 0xFF},
	} {
		data := append([]byte(nil), orig...)
		data[mut.at] = mut.b
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Fatalf("mutation %s accepted", mut.name)
		}
	}
}

// countingReader tracks how many bytes a reader consumed, to bound the
// work a hostile stream can cause.
type countingReader struct {
	data []byte
	pos  int
}

func (c *countingReader) Read(p []byte) (int, error) {
	if c.pos >= len(c.data) {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, c.data[c.pos:])
	c.pos += n
	return n, nil
}

// TestV02HostileLengthsDoNotOverAllocate claims absurd section lengths and
// counts with almost no payload: the reader must reject them without
// allocating in proportion to the claims. The allocation ceiling is
// enforced by running under a tight memory budget via testing's allocation
// counter.
func TestV02HostileLengthsDoNotOverAllocate(t *testing.T) {
	// magic + tagMeta with claimed 2^60-byte body.
	hostile := append([]byte(nil), magicV02...)
	hostile = append(hostile, tagMeta)
	hostile = append(hostile, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10) // uvarint 2^60
	hostile = append(hostile, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // string len claim
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Read(bytes.NewReader(hostile)); err == nil {
			t.Fatal("hostile stream accepted")
		}
	})
	// A handful of small fixed allocations are fine; slabs sized from the
	// hostile claims are not.
	if allocs > 64 {
		t.Fatalf("hostile stream caused %.0f allocations", allocs)
	}
}
