package store

import (
	"bytes"
	"testing"

	"github.com/snaps/snaps/internal/model"
)

// fuzzSeedSnapshot builds a tiny but feature-complete snapshot by hand so
// fuzz workers start instantly (the full ER pipeline takes seconds and
// would dominate worker startup).
func fuzzSeedSnapshot() *Snapshot {
	d := &model.Dataset{Name: "fuzz-seed"}
	add := func(role model.Role, cert model.CertID, first, sur string, year int, g model.Gender) model.RecordID {
		id := model.RecordID(len(d.Records))
		rec := model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur),
			Addr: model.Intern("5 uig"), Year: year,
			Truth: model.NoPerson,
		}
		if id == 0 {
			rec.Lat, rec.Lon = 57.58, -6.35
			rec.BirthHint = year - 30
		}
		d.Records = append(d.Records, rec)
		return id
	}
	b := add(model.Bb, 0, "torquil", "macsween", 1870, model.Male)
	m := add(model.Bm, 0, "flora", "macsween", 1870, model.Female)
	f := add(model.Bf, 0, "ewen", "macsween", 1870, model.Male)
	dd := add(model.Dd, 1, "torquil", "macsween", 1940, model.Male)
	d.Certificates = []model.Certificate{
		{ID: 0, Type: model.Birth, Year: 1870, Roles: map[model.Role]model.RecordID{model.Bb: b, model.Bm: m, model.Bf: f}, Age: -1},
		{ID: 1, Type: model.Death, Year: 1940, Roles: map[model.Role]model.RecordID{model.Dd: dd}, Cause: "old age", Age: 70},
	}
	return &Snapshot{Dataset: d, Clusters: [][]model.RecordID{{b, dd}}}
}

// FuzzSnapshotLoad throws mutated snapshot bytes at the dispatching reader.
// The invariants: never panic, and never trust an attacker-controlled
// length prefix for allocation (the hostile-length unit test pins the
// allocation bound; here the fuzzer hunts for panics and runaway paths
// across both the v01 gob and v02 binary decoders).
func FuzzSnapshotLoad(f *testing.F) {
	snap := fuzzSeedSnapshot()

	var v02 bytes.Buffer
	if err := Write(&v02, snap); err != nil {
		f.Fatal(err)
	}
	var v01 bytes.Buffer
	if err := WriteV01(&v01, snap); err != nil {
		f.Fatal(err)
	}

	// Seeds: both valid encodings, truncations, flipped section lengths,
	// bogus varints, and empty/garbage inputs.
	f.Add(v02.Bytes())
	f.Add(v01.Bytes())
	f.Add(v02.Bytes()[:len(v02.Bytes())/2])
	f.Add(v02.Bytes()[:12])
	f.Add([]byte("SNAPSBINv02"))
	f.Add([]byte("SNAPSv01"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), v02.Bytes()...)
	if len(corrupt) > 13 {
		corrupt[12] ^= 0x80 // flip a section-length varint continuation bit
	}
	f.Add(corrupt)
	hostile := append([]byte("SNAPSBINv02"), 1)
	hostile = append(hostile, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the reader accepts must also pass structural validation
		// and re-encode without error.
		if verr := validate(s.Dataset, s.Clusters); verr != nil {
			t.Fatalf("Read accepted a snapshot that fails validate: %v", verr)
		}
		var out bytes.Buffer
		if werr := Write(&out, s); werr != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", werr)
		}
	})
}
