// Package store persists the outputs of the SNAPS offline phase — the data
// set, the resolved entity clusters, and the pedigree graph — so a server
// can start without re-running entity resolution. Two wire formats are
// supported, both behind an 8-byte magic header so Load rejects unknown
// versions instead of misinterpreting bytes:
//
//   - SNAPSv01: the original gob stream. Still readable (old deployments
//     keep working) and still writable via WriteV01/SaveV01 for
//     compatibility tests and load-time benchmarks.
//   - SNAPSBINv02: the compact length-prefixed binary format of binary.go
//     — a per-file symbol table plus varint-coded records, certificates,
//     and clusters. Write/Save emit it by default; it is a fraction of the
//     gob's size and decodes section-by-section without gob's reflection.
package store

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/symbol"
)

// magicV01 identifies the gob-based SNAPS store stream.
var magicV01 = [8]byte{'S', 'N', 'A', 'P', 'S', 'v', '0', '1'}

// Footprint gauges: how much resident memory the loaded snapshot's data
// costs, amortised per record. Set on every successful Read/Load, so the
// memory-diet trajectory is visible on /metrics, not just in bench JSON.
var (
	mStoreRecords = obs.Default.Gauge("snaps_store_records",
		"Records in the most recently loaded or saved snapshot.")
	mStoreBytesPerRecord = obs.Default.FloatGauge("snaps_store_bytes_per_record",
		"Estimated resident data bytes per record of the most recent snapshot (records, certificates, clusters, and the amortised symbol table).")
)

// Snapshot is everything the online component needs.
type Snapshot struct {
	Dataset  *model.Dataset
	Clusters [][]model.RecordID // resolved entities as record-id clusters
}

// FromResult captures a snapshot from a pipeline result.
func FromResult(d *model.Dataset, s *er.EntityStore) *Snapshot {
	return &Snapshot{Dataset: d, Clusters: s.Clusters()}
}

// Restore rebuilds an entity store from the snapshot's clusters. Cluster
// links are rebuilt as cliques: the persisted clusters passed refinement
// before they were saved, and a clique's density of 1 guarantees that a
// later REF pass (for example during an incremental er.Extend) never peels
// a restored cluster apart. Clusters are small (tens of records), so the
// quadratic edge count is negligible.
func (s *Snapshot) Restore() *er.EntityStore {
	store := er.NewEntityStore(s.Dataset)
	for _, cluster := range s.Clusters {
		for i := 0; i < len(cluster); i++ {
			for j := i + 1; j < len(cluster); j++ {
				store.Link(cluster[i], cluster[j])
			}
		}
	}
	return store
}

// PedigreeGraph rebuilds the pedigree graph from the snapshot.
func (s *Snapshot) PedigreeGraph() *pedigree.Graph {
	return pedigree.Build(s.Dataset, s.Restore())
}

// wire is the gob payload; kept separate from Snapshot so the public type
// can evolve without breaking stored files (the version header guards the
// wire format).
type wire struct {
	Name         string
	Records      []wireRecord
	Certificates []wireCert
	Clusters     [][]model.RecordID
}

// wireRecord is the v01 gob shape of a record. It keeps the historical
// string fields under their original names: gob matches struct fields by
// name, so this is what makes pre-diet v01 files (and files written by
// older binaries) decode correctly now that model.Record holds symbol ids
// — encoding model.Record directly would silently drop every name field
// on old files and leak process-local symbol ids into new ones.
type wireRecord struct {
	ID         model.RecordID
	Cert       model.CertID
	Role       model.Role
	Gender     model.Gender
	FirstName  string
	Surname    string
	Address    string
	Occupation string
	Year       int
	Lat, Lon   float64
	BirthHint  int
	Truth      model.PersonID
}

// toWire converts a record to its v01 gob shape.
func toWire(r *model.Record) wireRecord {
	return wireRecord{
		ID: r.ID, Cert: r.Cert, Role: r.Role, Gender: r.Gender,
		FirstName: r.FirstName(), Surname: r.Surname(),
		Address: r.Address(), Occupation: r.Occupation(),
		Year: r.Year, Lat: r.Lat, Lon: r.Lon,
		BirthHint: r.BirthHint, Truth: r.Truth,
	}
}

// fromWire converts a v01 gob record back, interning its strings.
func fromWire(w *wireRecord) model.Record {
	return model.Record{
		ID: w.ID, Cert: w.Cert, Role: w.Role, Gender: w.Gender,
		First: model.Intern(w.FirstName), Sur: model.Intern(w.Surname),
		Addr: model.Intern(w.Address), Occ: model.Intern(w.Occupation),
		Year: w.Year, Lat: w.Lat, Lon: w.Lon,
		BirthHint: w.BirthHint, Truth: w.Truth,
	}
}

// wireCert flattens the certificate role map for stable encoding.
type wireCert struct {
	ID    model.CertID
	Type  model.CertType
	Year  int
	Cause string
	Age   int
	Roles []wireRole
}

type wireRole struct {
	Role model.Role
	Rec  model.RecordID
}

// Write serialises the snapshot in the compact v02 binary format.
func Write(dst io.Writer, s *Snapshot) error {
	w := bufio.NewWriter(dst)
	if err := writeBinary(w, s); err != nil {
		return err
	}
	return w.Flush()
}

// WriteV01 serialises the snapshot in the legacy gob format, for
// compatibility tests and for benchmarking old-format load times against
// the compact format.
func WriteV01(dst io.Writer, s *Snapshot) error {
	w := bufio.NewWriter(dst)
	if _, err := w.Write(magicV01[:]); err != nil {
		return err
	}
	payload := wire{
		Name:     s.Dataset.Name,
		Clusters: s.Clusters,
	}
	payload.Records = make([]wireRecord, len(s.Dataset.Records))
	for i := range s.Dataset.Records {
		payload.Records[i] = toWire(&s.Dataset.Records[i])
	}
	for i := range s.Dataset.Certificates {
		c := &s.Dataset.Certificates[i]
		wc := wireCert{ID: c.ID, Type: c.Type, Year: c.Year, Cause: c.Cause, Age: c.Age}
		for role := model.Role(0); role < model.NumRoles; role++ {
			if rec, ok := c.Roles[role]; ok {
				wc.Roles = append(wc.Roles, wireRole{Role: role, Rec: rec})
			}
		}
		payload.Certificates = append(payload.Certificates, wc)
	}
	if err := gob.NewEncoder(w).Encode(&payload); err != nil {
		return err
	}
	return w.Flush()
}

// Read deserialises a snapshot, dispatching on the 8-byte magic: v01 gob
// or v02 compact binary.
func Read(src io.Reader) (*Snapshot, error) {
	r := bufio.NewReader(src)
	var got [8]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return nil, fmt.Errorf("store: reading header: %w", err)
	}
	var s *Snapshot
	var err error
	switch {
	case got == magicV01:
		s, err = readGob(r)
	case got == magicV02Head:
		s, err = readBinary(r)
	default:
		return nil, fmt.Errorf("store: bad magic %q (want %q or %q)", got, magicV01, magicV02)
	}
	if err != nil {
		return nil, err
	}
	recordFootprint(s)
	return s, nil
}

// readGob decodes the v01 gob payload following the magic.
func readGob(r *bufio.Reader) (*Snapshot, error) {
	var payload wire
	if err := gob.NewDecoder(r).Decode(&payload); err != nil {
		return nil, fmt.Errorf("store: decoding: %w", err)
	}
	d := &model.Dataset{Name: payload.Name}
	d.Records = make([]model.Record, len(payload.Records))
	for i := range payload.Records {
		d.Records[i] = fromWire(&payload.Records[i])
	}
	for _, wc := range payload.Certificates {
		c := model.Certificate{
			ID: wc.ID, Type: wc.Type, Year: wc.Year, Cause: wc.Cause, Age: wc.Age,
			Roles: make(map[model.Role]model.RecordID, len(wc.Roles)),
		}
		for _, wr := range wc.Roles {
			c.Roles[wr.Role] = wr.Rec
		}
		d.Certificates = append(d.Certificates, c)
	}
	if err := validate(d, payload.Clusters); err != nil {
		return nil, err
	}
	return &Snapshot{Dataset: d, Clusters: payload.Clusters}, nil
}

// recordFootprint publishes the loaded snapshot's resident data footprint
// on the store gauges.
func recordFootprint(s *Snapshot) {
	n := len(s.Dataset.Records)
	mStoreRecords.Set(int64(n))
	if n > 0 {
		mStoreBytesPerRecord.Set(float64(FootprintBytes(s.Dataset, s.Clusters)) / float64(n))
	}
}

// validate rejects structurally broken snapshots (out-of-range ids,
// overlapping clusters) so corruption fails fast instead of panicking later.
func validate(d *model.Dataset, clusters [][]model.RecordID) error {
	n := model.RecordID(len(d.Records))
	for i := range d.Records {
		if d.Records[i].ID != model.RecordID(i) {
			return fmt.Errorf("store: record %d has id %d", i, d.Records[i].ID)
		}
	}
	for _, c := range d.Certificates {
		for role, rec := range c.Roles {
			if rec < 0 || rec >= n {
				return fmt.Errorf("store: cert %d role %v references record %d of %d", c.ID, role, rec, n)
			}
		}
	}
	seen := make([]bool, n)
	for ci, cluster := range clusters {
		if len(cluster) < 2 {
			return fmt.Errorf("store: cluster %d has %d records", ci, len(cluster))
		}
		for _, rec := range cluster {
			if rec < 0 || rec >= n {
				return fmt.Errorf("store: cluster %d references record %d of %d", ci, rec, n)
			}
			if seen[rec] {
				return fmt.Errorf("store: record %d appears in two clusters", rec)
			}
			seen[rec] = true
		}
	}
	return nil
}

// FootprintBytes estimates the resident heap bytes of a loaded snapshot's
// data: the record slab, certificates with their role maps, clusters, and
// the full interned-string table (an upper bound on this data set's share
// of it — the table is process-global and amortised across every clone and
// generation referencing it). The bench harness divides it by the record
// count for the bytes-per-record trajectory of BENCH_offline.json.
func FootprintBytes(d *model.Dataset, clusters [][]model.RecordID) int64 {
	const (
		recordSize  = 64 // unsafe.Sizeof(model.Record{}) with padding
		certBase    = 64 // Certificate struct + map header overhead
		roleEntry   = 16 // map bucket share per role entry
		sliceHeader = 24
	)
	total := int64(len(d.Records)) * recordSize
	for i := range d.Certificates {
		total += certBase + int64(len(d.Certificates[i].Roles))*roleEntry + int64(len(d.Certificates[i].Cause))
	}
	for _, c := range clusters {
		total += sliceHeader + 4*int64(len(c))
	}
	total += symbolTableBytes()
	return total
}

// symbolTableBytes reports the resident cost of the global symbol table:
// backing string bytes plus a string header per entry.
func symbolTableBytes() int64 {
	return symbol.Bytes() + 16*int64(symbol.Len())
}

// FootprintBytesPreDiet estimates the same data's resident bytes under the
// pre-diet representation, for the before/after trajectory in
// BENCH_offline.json: records carried four inline string headers and the
// decoder materialised a private heap copy of every populated attribute
// value, so string bytes scale with mentions rather than distinct values
// and there is no shared table to amortise.
func FootprintBytesPreDiet(d *model.Dataset, clusters [][]model.RecordID) int64 {
	const (
		fatRecordSize = 112 // old Record: four 16-byte string headers replace the 4-byte symbol ids
		strOverhead   = 8   // per-string allocator size-class rounding, averaged
		certBase      = 64
		roleEntry     = 16
		sliceHeader   = 24
	)
	total := int64(len(d.Records)) * fatRecordSize
	for i := range d.Records {
		r := &d.Records[i]
		for _, v := range []string{r.FirstName(), r.Surname(), r.Address(), r.Occupation()} {
			if v != "" {
				total += int64(len(v)) + strOverhead
			}
		}
	}
	for i := range d.Certificates {
		total += certBase + int64(len(d.Certificates[i].Roles))*roleEntry + int64(len(d.Certificates[i].Cause))
	}
	for _, c := range clusters {
		total += sliceHeader + 4*int64(len(c))
	}
	return total
}

// Save writes the snapshot to a file in the v02 format, atomically via a
// temporary sibling.
func Save(path string, s *Snapshot) error {
	return save(path, s, Write)
}

// SaveV01 writes the snapshot in the legacy gob format (see WriteV01).
func SaveV01(path string, s *Snapshot) error {
	return save(path, s, WriteV01)
}

func save(path string, s *Snapshot, write func(io.Writer, *Snapshot) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a snapshot from a file.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
