// Package store persists the outputs of the SNAPS offline phase — the data
// set, the resolved entity clusters, and the pedigree graph — so a server
// can start without re-running entity resolution. The format is a versioned
// gob stream with a magic header; Load rejects unknown versions instead of
// misinterpreting bytes.
package store

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
)

// magic identifies a SNAPS store stream.
var magic = [8]byte{'S', 'N', 'A', 'P', 'S', 'v', '0', '1'}

// Snapshot is everything the online component needs.
type Snapshot struct {
	Dataset  *model.Dataset
	Clusters [][]model.RecordID // resolved entities as record-id clusters
}

// FromResult captures a snapshot from a pipeline result.
func FromResult(d *model.Dataset, s *er.EntityStore) *Snapshot {
	return &Snapshot{Dataset: d, Clusters: s.Clusters()}
}

// Restore rebuilds an entity store from the snapshot's clusters. Cluster
// links are rebuilt as cliques: the persisted clusters passed refinement
// before they were saved, and a clique's density of 1 guarantees that a
// later REF pass (for example during an incremental er.Extend) never peels
// a restored cluster apart. Clusters are small (tens of records), so the
// quadratic edge count is negligible.
func (s *Snapshot) Restore() *er.EntityStore {
	store := er.NewEntityStore(s.Dataset)
	for _, cluster := range s.Clusters {
		for i := 0; i < len(cluster); i++ {
			for j := i + 1; j < len(cluster); j++ {
				store.Link(cluster[i], cluster[j])
			}
		}
	}
	return store
}

// PedigreeGraph rebuilds the pedigree graph from the snapshot.
func (s *Snapshot) PedigreeGraph() *pedigree.Graph {
	return pedigree.Build(s.Dataset, s.Restore())
}

// wire is the gob payload; kept separate from Snapshot so the public type
// can evolve without breaking stored files (the version header guards the
// wire format).
type wire struct {
	Name         string
	Records      []model.Record
	Certificates []wireCert
	Clusters     [][]model.RecordID
}

// wireCert flattens the certificate role map for stable encoding.
type wireCert struct {
	ID    model.CertID
	Type  model.CertType
	Year  int
	Cause string
	Age   int
	Roles []wireRole
}

type wireRole struct {
	Role model.Role
	Rec  model.RecordID
}

// Write serialises the snapshot.
func Write(dst io.Writer, s *Snapshot) error {
	w := bufio.NewWriter(dst)
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	payload := wire{
		Name:     s.Dataset.Name,
		Records:  s.Dataset.Records,
		Clusters: s.Clusters,
	}
	for i := range s.Dataset.Certificates {
		c := &s.Dataset.Certificates[i]
		wc := wireCert{ID: c.ID, Type: c.Type, Year: c.Year, Cause: c.Cause, Age: c.Age}
		for role := model.Role(0); role < model.NumRoles; role++ {
			if rec, ok := c.Roles[role]; ok {
				wc.Roles = append(wc.Roles, wireRole{Role: role, Rec: rec})
			}
		}
		payload.Certificates = append(payload.Certificates, wc)
	}
	if err := gob.NewEncoder(w).Encode(&payload); err != nil {
		return err
	}
	return w.Flush()
}

// Read deserialises a snapshot.
func Read(src io.Reader) (*Snapshot, error) {
	r := bufio.NewReader(src)
	var got [8]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return nil, fmt.Errorf("store: reading header: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("store: bad magic %q (want %q)", got, magic)
	}
	var payload wire
	if err := gob.NewDecoder(r).Decode(&payload); err != nil {
		return nil, fmt.Errorf("store: decoding: %w", err)
	}
	d := &model.Dataset{Name: payload.Name, Records: payload.Records}
	for _, wc := range payload.Certificates {
		c := model.Certificate{
			ID: wc.ID, Type: wc.Type, Year: wc.Year, Cause: wc.Cause, Age: wc.Age,
			Roles: make(map[model.Role]model.RecordID, len(wc.Roles)),
		}
		for _, wr := range wc.Roles {
			c.Roles[wr.Role] = wr.Rec
		}
		d.Certificates = append(d.Certificates, c)
	}
	if err := validate(d, payload.Clusters); err != nil {
		return nil, err
	}
	return &Snapshot{Dataset: d, Clusters: payload.Clusters}, nil
}

// validate rejects structurally broken snapshots (out-of-range ids,
// overlapping clusters) so corruption fails fast instead of panicking later.
func validate(d *model.Dataset, clusters [][]model.RecordID) error {
	n := model.RecordID(len(d.Records))
	for i := range d.Records {
		if d.Records[i].ID != model.RecordID(i) {
			return fmt.Errorf("store: record %d has id %d", i, d.Records[i].ID)
		}
	}
	for _, c := range d.Certificates {
		for role, rec := range c.Roles {
			if rec < 0 || rec >= n {
				return fmt.Errorf("store: cert %d role %v references record %d of %d", c.ID, role, rec, n)
			}
		}
	}
	seen := make([]bool, n)
	for ci, cluster := range clusters {
		if len(cluster) < 2 {
			return fmt.Errorf("store: cluster %d has %d records", ci, len(cluster))
		}
		for _, rec := range cluster {
			if rec < 0 || rec >= n {
				return fmt.Errorf("store: cluster %d references record %d of %d", ci, rec, n)
			}
			if seen[rec] {
				return fmt.Errorf("store: record %d appears in two clusters", rec)
			}
			seen[rec] = true
		}
	}
	return nil
}

// Save writes the snapshot to a file, atomically via a temporary sibling.
func Save(path string, s *Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a snapshot from a file.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
