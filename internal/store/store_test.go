package store

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
)

func resolvedSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	p := dataset.Generate(dataset.IOS().Scaled(0.05))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	return FromResult(p.Dataset, pr.Result.Store)
}

func TestRoundTrip(t *testing.T) {
	snap := resolvedSnapshot(t)
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset.Name != snap.Dataset.Name {
		t.Errorf("name %q vs %q", got.Dataset.Name, snap.Dataset.Name)
	}
	if len(got.Dataset.Records) != len(snap.Dataset.Records) {
		t.Fatalf("records %d vs %d", len(got.Dataset.Records), len(snap.Dataset.Records))
	}
	for i := range snap.Dataset.Records {
		if got.Dataset.Records[i] != snap.Dataset.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if len(got.Clusters) != len(snap.Clusters) {
		t.Fatalf("clusters %d vs %d", len(got.Clusters), len(snap.Clusters))
	}
	if len(got.Dataset.Certificates) != len(snap.Dataset.Certificates) {
		t.Fatalf("certificates differ")
	}
	for i := range snap.Dataset.Certificates {
		a, b := &snap.Dataset.Certificates[i], &got.Dataset.Certificates[i]
		if a.ID != b.ID || a.Type != b.Type || a.Year != b.Year || a.Cause != b.Cause || a.Age != b.Age {
			t.Fatalf("certificate %d scalar fields differ", i)
		}
		if len(a.Roles) != len(b.Roles) {
			t.Fatalf("certificate %d roles differ", i)
		}
		for role, rec := range a.Roles {
			if b.Roles[role] != rec {
				t.Fatalf("certificate %d role %v differs", i, role)
			}
		}
	}
}

func TestRestorePreservesMatchPairs(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.05))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	snap := FromResult(p.Dataset, pr.Result.Store)

	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored := got.Restore()
	rp := model.MakeRolePair(model.Bm, model.Bm)
	orig := pr.Result.Store.MatchPairs(rp)
	after := restored.MatchPairs(rp)
	if len(orig) != len(after) {
		t.Fatalf("match pairs %d vs %d after restore", len(orig), len(after))
	}
	for k := range orig {
		if !after[k] {
			t.Fatal("restored clustering lost a pair")
		}
	}
}

func TestPedigreeGraphFromSnapshot(t *testing.T) {
	snap := resolvedSnapshot(t)
	g := snap.PedigreeGraph()
	if len(g.Nodes) == 0 {
		t.Fatal("empty pedigree graph from snapshot")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTSNAPSxxxx"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	snap := resolvedSnapshot(t)
	// Point a cluster at an out-of-range record.
	bad := &Snapshot{
		Dataset:  snap.Dataset,
		Clusters: [][]model.RecordID{{0, model.RecordID(len(snap.Dataset.Records) + 5)}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("out-of-range cluster accepted")
	}

	// Overlapping clusters.
	bad = &Snapshot{
		Dataset:  snap.Dataset,
		Clusters: [][]model.RecordID{{0, 1}, {1, 2}},
	}
	buf.Reset()
	if err := Write(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("overlapping clusters accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	snap := resolvedSnapshot(t)
	path := filepath.Join(t.TempDir(), "snapshot.snaps")
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Clusters) != len(snap.Clusters) {
		t.Fatalf("clusters %d vs %d", len(got.Clusters), len(snap.Clusters))
	}
}

// TestSnapshotRoundTripAfterExtend grows a resolved store with er.Extend
// (the live-ingestion path) and checks that the clusters created after
// Grow() survive Save/Load and come back as cliques.
func TestSnapshotRoundTripAfterExtend(t *testing.T) {
	d := &model.Dataset{Name: "extend-roundtrip"}
	add := func(role model.Role, cert model.CertID, first, sur string, year int, g model.Gender) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Addr: model.Intern("5 uig"), Year: year,
			Truth: model.NoPerson,
		})
		return id
	}
	add(model.Bb, 0, "torquil", "macsween", 1870, model.Male)
	add(model.Bm, 0, "flora", "macsween", 1870, model.Female)
	add(model.Bf, 0, "ewen", "macsween", 1870, model.Male)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 0, Type: model.Birth, Year: 1870, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 0, model.Bm: 1, model.Bf: 2},
	})
	add(model.Bb, 1, "una", "macsween", 1872, model.Female)
	add(model.Bm, 1, "flora", "macsween", 1872, model.Female)
	add(model.Bf, 1, "ewen", "macsween", 1872, model.Male)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 1, Type: model.Birth, Year: 1872, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 3, model.Bm: 4, model.Bf: 5},
	})

	base := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	st := base.Result.Store

	firstNew := model.RecordID(len(d.Records))
	add(model.Dd, 2, "torquil", "macsween", 1875, model.Male)
	add(model.Dm, 2, "flora", "macsween", 1875, model.Female)
	add(model.Df, 2, "ewen", "macsween", 1875, model.Male)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 2, Type: model.Death, Year: 1875, Age: 5, Cause: "measles",
		Roles: map[model.Role]model.RecordID{
			model.Dd: firstNew, model.Dm: firstNew + 1, model.Df: firstNew + 2,
		},
	})
	er.Extend(d, st, firstNew, depgraph.DefaultConfig(), er.DefaultConfig())
	if st.EntityOf(firstNew) == er.NoEntity {
		t.Fatal("Extend did not cluster the new death record")
	}

	snap := FromResult(d, st)
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored := got.Restore()

	// The Extend-created links survive the round trip.
	together := func(s *er.EntityStore, a, b model.RecordID) bool {
		return s.EntityOf(a) != er.NoEntity && s.EntityOf(a) == s.EntityOf(b)
	}
	for _, pair := range [][2]model.RecordID{
		{0, firstNew},     // baby + deceased
		{1, firstNew + 1}, // birth mother + death mother
		{2, firstNew + 2}, // birth father + death father
		{1, 4}, {2, 5},    // original cross-certificate links
	} {
		if !together(st, pair[0], pair[1]) {
			t.Fatalf("records %d and %d not co-clustered before save", pair[0], pair[1])
		}
		if !together(restored, pair[0], pair[1]) {
			t.Errorf("records %d and %d not co-clustered after restore", pair[0], pair[1])
		}
	}
	if len(restored.Entities()) != len(st.Entities()) {
		t.Errorf("entity count %d after restore, want %d",
			len(restored.Entities()), len(st.Entities()))
	}

	// Restored clusters are cliques: a refinement pass cannot peel them.
	removed, splits := restored.Refine(0.3, 15)
	if removed != 0 || splits != 0 {
		t.Errorf("refine peeled restored Extend clusters: removed=%d splits=%d", removed, splits)
	}
}

func TestRestoredClustersSurviveRefine(t *testing.T) {
	// Persisted clusters passed refinement before saving; a REF pass over a
	// restored store (e.g. during incremental resolution) must not peel
	// them apart.
	snap := resolvedSnapshot(t)
	restored := snap.Restore()
	before := len(restored.Entities())
	removed, splits := restored.Refine(0.3, 15)
	if removed != 0 || splits != 0 {
		t.Fatalf("refine dismantled restored clusters: removed=%d splits=%d", removed, splits)
	}
	if len(restored.Entities()) != before {
		t.Fatal("entity count changed")
	}
}
