package store

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
)

func resolvedSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	p := dataset.Generate(dataset.IOS().Scaled(0.05))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	return FromResult(p.Dataset, pr.Result.Store)
}

func TestRoundTrip(t *testing.T) {
	snap := resolvedSnapshot(t)
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset.Name != snap.Dataset.Name {
		t.Errorf("name %q vs %q", got.Dataset.Name, snap.Dataset.Name)
	}
	if len(got.Dataset.Records) != len(snap.Dataset.Records) {
		t.Fatalf("records %d vs %d", len(got.Dataset.Records), len(snap.Dataset.Records))
	}
	for i := range snap.Dataset.Records {
		if got.Dataset.Records[i] != snap.Dataset.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if len(got.Clusters) != len(snap.Clusters) {
		t.Fatalf("clusters %d vs %d", len(got.Clusters), len(snap.Clusters))
	}
	if len(got.Dataset.Certificates) != len(snap.Dataset.Certificates) {
		t.Fatalf("certificates differ")
	}
	for i := range snap.Dataset.Certificates {
		a, b := &snap.Dataset.Certificates[i], &got.Dataset.Certificates[i]
		if a.ID != b.ID || a.Type != b.Type || a.Year != b.Year || a.Cause != b.Cause || a.Age != b.Age {
			t.Fatalf("certificate %d scalar fields differ", i)
		}
		if len(a.Roles) != len(b.Roles) {
			t.Fatalf("certificate %d roles differ", i)
		}
		for role, rec := range a.Roles {
			if b.Roles[role] != rec {
				t.Fatalf("certificate %d role %v differs", i, role)
			}
		}
	}
}

func TestRestorePreservesMatchPairs(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.05))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	snap := FromResult(p.Dataset, pr.Result.Store)

	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored := got.Restore()
	rp := model.MakeRolePair(model.Bm, model.Bm)
	orig := pr.Result.Store.MatchPairs(rp)
	after := restored.MatchPairs(rp)
	if len(orig) != len(after) {
		t.Fatalf("match pairs %d vs %d after restore", len(orig), len(after))
	}
	for k := range orig {
		if !after[k] {
			t.Fatal("restored clustering lost a pair")
		}
	}
}

func TestPedigreeGraphFromSnapshot(t *testing.T) {
	snap := resolvedSnapshot(t)
	g := snap.PedigreeGraph()
	if len(g.Nodes) == 0 {
		t.Fatal("empty pedigree graph from snapshot")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTSNAPSxxxx"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	snap := resolvedSnapshot(t)
	// Point a cluster at an out-of-range record.
	bad := &Snapshot{
		Dataset:  snap.Dataset,
		Clusters: [][]model.RecordID{{0, model.RecordID(len(snap.Dataset.Records) + 5)}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("out-of-range cluster accepted")
	}

	// Overlapping clusters.
	bad = &Snapshot{
		Dataset:  snap.Dataset,
		Clusters: [][]model.RecordID{{0, 1}, {1, 2}},
	}
	buf.Reset()
	if err := Write(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("overlapping clusters accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	snap := resolvedSnapshot(t)
	path := filepath.Join(t.TempDir(), "snapshot.snaps")
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Clusters) != len(snap.Clusters) {
		t.Fatalf("clusters %d vs %d", len(got.Clusters), len(snap.Clusters))
	}
}

func TestRestoredClustersSurviveRefine(t *testing.T) {
	// Persisted clusters passed refinement before saving; a REF pass over a
	// restored store (e.g. during incremental resolution) must not peel
	// them apart.
	snap := resolvedSnapshot(t)
	restored := snap.Restore()
	before := len(restored.Entities())
	removed, splits := restored.Refine(0.3, 15)
	if removed != 0 || splits != 0 {
		t.Fatalf("refine dismantled restored clusters: removed=%d splits=%d", removed, splits)
	}
	if len(restored.Entities()) != before {
		t.Fatal("entity count changed")
	}
}
