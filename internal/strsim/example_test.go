package strsim_test

import (
	"fmt"

	"github.com/snaps/snaps/internal/strsim"
)

func ExampleJaroWinkler() {
	fmt.Printf("%.4f\n", strsim.JaroWinkler("macdonald", "mcdonald"))
	fmt.Printf("%.4f\n", strsim.JaroWinkler("mary", "mary"))
	fmt.Printf("%.4f\n", strsim.JaroWinkler("mary", "zxqw"))
	// Output:
	// 0.9667
	// 1.0000
	// 0.0000
}

func ExampleNameSim() {
	// Single tokens behave like Jaro-Winkler; transposed double forenames
	// are rescued by token matching.
	fmt.Printf("%.2f\n", strsim.NameSim("jane elizabeth", "elizabeth jane"))
	fmt.Printf("%.2f\n", strsim.JaroWinkler("jane elizabeth", "elizabeth jane"))
	// Output:
	// 1.00
	// 0.74
}

func ExampleJaccard() {
	fmt.Printf("%.4f\n", strsim.Jaccard("night", "nacht"))
	// Output:
	// 0.1429
}

func ExampleSoundex() {
	fmt.Println(strsim.Soundex("Robert"), strsim.Soundex("Rupert"))
	// Output:
	// R163 R163
}
