// Equivalence tests pinning the allocation-free kernels to verbatim
// copies of the classic implementations they replaced. The optimised
// kernels must be bit-for-bit identical — their outputs feed the golden
// determinism suites, so even a last-ulp drift would show up as a
// byte-level diff in resolved clusters.
package strsim

import (
	"math/rand"
	"strings"
	"testing"
)

// jaroReferenceClassic is the pre-optimisation Jaro kernel, kept verbatim:
// two freshly allocated []bool matched-flag slices, no bitmask fast path,
// no pooling. Every optimised path is tested against it.
func jaroReferenceClassic(a, b string) float64 {
	if a == b {
		if a == "" {
			return 0
		}
		return 1
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	matchDist := max(la, lb)/2 - 1
	if matchDist < 0 {
		matchDist = 0
	}
	aMatched := make([]bool, la)
	bMatched := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max(0, i-matchDist)
		hi := min(lb-1, i+matchDist)
		for j := lo; j <= hi; j++ {
			if bMatched[j] || a[i] != b[j] {
				continue
			}
			aMatched[i] = true
			bMatched[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transposes := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatched[i] {
			continue
		}
		for !bMatched[j] {
			j++
		}
		if a[i] != b[j] {
			transposes++
		}
		j++
	}
	m := float64(matches)
	t := float64(transposes) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// FuzzJaroBitmaskEquivalence fuzzes the dispatching Jaro (bitmask fast
// path, pooled-scratch slow path) against the classic reference. Seeds
// cover the dispatch boundaries: empty strings, sub-bigram strings,
// non-ASCII bytes (the kernels operate on bytes, so multi-byte runes must
// behave identically in both), exactly 64 bytes, and beyond 64 bytes
// where the scratch path takes over.
func FuzzJaroBitmaskEquivalence(f *testing.F) {
	long64 := strings.Repeat("abcdefgh", 8)        // exactly 64 bytes
	long65 := long64 + "x"                         // first scratch-path length
	long200 := strings.Repeat("van den berg ", 16) // deep scratch path
	seeds := [][2]string{
		{"", ""},
		{"", "a"},
		{"martha", "marhta"},
		{"dixon", "dicksonx"},
		{"jellyfish", "smellyfish"},
		{"jörg", "jürgen"}, // non-ASCII: ö and ü are two bytes each
		{"Ødegård", "Odegard"},
		{long64, long64[:63] + "y"},
		{long64, long65},
		{long65, long200},
		{"a", long200},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		got := Jaro(a, b)
		want := jaroReferenceClassic(a, b)
		if got != want {
			t.Fatalf("Jaro(%q, %q) = %v, classic reference = %v", a, b, got, want)
		}
	})
}

// randomName draws a random byte string biased towards the name alphabet
// but with occasional high bytes and spaces, length 0..79 so both Jaro
// paths and the sub-bigram edge cases are exercised.
func randomName(rng *rand.Rand) string {
	n := rng.Intn(80)
	buf := make([]byte, n)
	for i := range buf {
		switch rng.Intn(10) {
		case 0:
			buf[i] = ' '
		case 1:
			buf[i] = byte(rng.Intn(256)) // arbitrary byte, incl. non-ASCII
		default:
			buf[i] = byte('a' + rng.Intn(26))
		}
	}
	return string(buf)
}

// TestJaroKernelPathsAgree is the deterministic form of the fuzz target,
// so the equivalence is checked on every plain `go test` run, not only
// when the fuzz engine executes.
func TestJaroKernelPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		a, b := randomName(rng), randomName(rng)
		if got, want := Jaro(a, b), jaroReferenceClassic(a, b); got != want {
			t.Fatalf("Jaro(%q, %q) = %v, classic reference = %v", a, b, got, want)
		}
	}
}

// TestJaccardBigramIDsMatchesMapJaccard pins the sorted-merge Jaccard over
// packed bigram IDs to the map-based Jaccard for distinct strings. (The
// a == b fast path of Jaccard is intentionally NOT part of the merge
// kernel's contract — callers dispatch equality before comparing
// signatures — so equal inputs are skipped.)
func TestJaccardBigramIDsMatchesMapJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		a, b := randomName(rng), randomName(rng)
		if a == b {
			continue
		}
		ga := AppendBigramIDs(nil, a)
		gb := AppendBigramIDs(nil, b)
		if got, want := JaccardBigramIDs(ga, gb), Jaccard(a, b); got != want {
			t.Fatalf("JaccardBigramIDs(%q, %q) = %v, map Jaccard = %v", a, b, got, want)
		}
	}
}

// TestAppendBigramIDsMatchesBigramSet checks that the packed signature is
// exactly the sorted integer form of BigramSet: same distinct bigrams,
// ascending, no duplicates.
func TestAppendBigramIDsMatchesBigramSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		s := randomName(rng)
		ids := AppendBigramIDs(nil, s)
		set := map[BigramID]bool{}
		for _, bg := range BigramSet(s) {
			set[MakeBigramID(bg[0], bg[1])] = true
		}
		if len(ids) != len(set) {
			t.Fatalf("AppendBigramIDs(%q) has %d ids, BigramSet has %d", s, len(ids), len(set))
		}
		for j, id := range ids {
			if !set[id] {
				t.Fatalf("AppendBigramIDs(%q) contains %v not in BigramSet", s, id)
			}
			if j > 0 && ids[j-1] >= id {
				t.Fatalf("AppendBigramIDs(%q) not strictly ascending at %d: %v", s, j, ids)
			}
		}
	}
}

// TestSymMongeElkanTokensMatchesString pins the pre-tokenised entry point
// (fed by the per-symbol feature slab) to the string form, including the
// tab-vs-space asymmetry: Fields splits on both, so the token slices must
// reproduce exactly what SymMongeElkan computes internally.
func TestSymMongeElkanTokensMatchesString(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		a, b := randomName(rng), randomName(rng)
		got := SymMongeElkanTokens(Fields(a), Fields(b))
		want := SymMongeElkan(a, b)
		if got != want {
			t.Fatalf("SymMongeElkanTokens(%q, %q) = %v, string form = %v", a, b, got, want)
		}
	}
}

// BenchmarkJaroKernel measures the two Jaro paths the streamed scorer
// leans on: the ≤64-byte bitmask kernel (virtually all names) and the
// pooled-scratch fallback.
func BenchmarkJaroKernel(b *testing.B) {
	short := [][2]string{
		{"jonathan", "johnathan"},
		{"margaret", "margret"},
		{"van den berg", "van der berg"},
		{"elisabeth", "elizabeth"},
	}
	long := strings.Repeat("wilhelmina jacoba ", 5) // 90 bytes: scratch path
	b.Run("bitmask", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := short[i&3]
			Jaro(p[0], p[1])
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Jaro(long, long[:len(long)-3])
		}
	})
}
