// Package strsim provides the approximate string comparison functions used
// throughout SNAPS: Jaro and Jaro-Winkler for personal names, normalised
// Levenshtein edit similarity, bigram extraction and Jaccard similarity for
// longer strings, maximum-absolute-difference similarity for years, and a
// haversine-based similarity for geocoded addresses.
//
// All similarities are normalised to [0, 1], where 1 means identical and 0
// means completely different, matching the convention of the paper.
package strsim

import (
	"math"
	"sync"
)

// Jaro returns the Jaro similarity between two strings. It operates on
// bytes, which is adequate for the ASCII historical-records domain.
//
// The kernel is allocation-free: strings up to 64 bytes (virtually every
// name in the vital-records domain) track their matched positions in two
// uint64 bitmasks; longer strings fall back to pooled []bool scratch. Both
// paths run the identical match/transposition schedule, so the returned
// float is bit-for-bit the classic implementation's (locked in by
// FuzzJaroBitmaskEquivalence).
func Jaro(a, b string) float64 {
	if a == b {
		if a == "" {
			return 0 // the paper treats missing-vs-missing as no evidence
		}
		return 1
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	if la <= 64 && lb <= 64 {
		return jaroBitmask(a, b)
	}
	return jaroScratch(a, b)
}

// jaroBitmask is the ≤64-byte fast path: matched-position flags live in two
// registers instead of two heap slices.
func jaroBitmask(a, b string) float64 {
	la, lb := len(a), len(b)
	matchDist := max(la, lb)/2 - 1
	if matchDist < 0 {
		matchDist = 0
	}
	var aMatched, bMatched uint64
	matches := 0
	for i := 0; i < la; i++ {
		lo := max(0, i-matchDist)
		hi := min(lb-1, i+matchDist)
		for j := lo; j <= hi; j++ {
			if bMatched&(1<<uint(j)) != 0 || a[i] != b[j] {
				continue
			}
			aMatched |= 1 << uint(i)
			bMatched |= 1 << uint(j)
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transposes := 0
	j := 0
	for i := 0; i < la; i++ {
		if aMatched&(1<<uint(i)) == 0 {
			continue
		}
		for bMatched&(1<<uint(j)) == 0 {
			j++
		}
		if a[i] != b[j] {
			transposes++
		}
		j++
	}
	m := float64(matches)
	t := float64(transposes) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// jaroPool recycles the matched-flag scratch of the >64-byte path.
var jaroPool = sync.Pool{New: func() any { s := make([]bool, 256); return &s }}

// jaroScratch is the long-string path, identical to the classic
// implementation except that the matched-flag slices are pooled.
func jaroScratch(a, b string) float64 {
	la, lb := len(a), len(b)
	matchDist := max(la, lb)/2 - 1
	if matchDist < 0 {
		matchDist = 0
	}
	sp := jaroPool.Get().(*[]bool)
	scratch := *sp
	if cap(scratch) < la+lb {
		scratch = make([]bool, la+lb)
	}
	scratch = scratch[:cap(scratch)]
	for i := range scratch[:la+lb] {
		scratch[i] = false
	}
	aMatched := scratch[:la]
	bMatched := scratch[la : la+lb]
	matches := 0
	for i := 0; i < la; i++ {
		lo := max(0, i-matchDist)
		hi := min(lb-1, i+matchDist)
		for j := lo; j <= hi; j++ {
			if bMatched[j] || a[i] != b[j] {
				continue
			}
			aMatched[i] = true
			bMatched[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		*sp = scratch
		jaroPool.Put(sp)
		return 0
	}
	// Count transpositions among matched characters.
	transposes := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatched[i] {
			continue
		}
		for !bMatched[j] {
			j++
		}
		if a[i] != b[j] {
			transposes++
		}
		j++
	}
	*sp = scratch
	jaroPool.Put(sp)
	m := float64(matches)
	t := float64(transposes) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// winklerPrefixScale is the standard Winkler prefix scaling factor.
const winklerPrefixScale = 0.1

// JaroWinkler returns the Jaro-Winkler similarity, which boosts the Jaro
// similarity of strings sharing a common prefix of up to four characters.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	if j == 0 {
		return 0
	}
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*winklerPrefixScale*(1-j)
}

// Levenshtein returns the edit distance (insertions, deletions,
// substitutions) between two strings.
func Levenshtein(a, b string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// EditSim returns the normalised edit similarity 1 - dist/maxLen.
func EditSim(a, b string) float64 {
	if a == "" || b == "" {
		return 0
	}
	if a == b {
		return 1
	}
	d := Levenshtein(a, b)
	return 1 - float64(d)/float64(max(len(a), len(b)))
}

// Bigrams returns the multiset of two-character substrings of s as a
// sorted-insertion map from bigram to count. A string shorter than two
// characters yields an empty map.
func Bigrams(s string) map[string]int {
	out := make(map[string]int, max(0, len(s)-1))
	for i := 0; i+2 <= len(s); i++ {
		out[s[i:i+2]]++
	}
	return out
}

// BigramSet returns the set of distinct bigrams of s.
func BigramSet(s string) []string {
	seen := Bigrams(s)
	out := make([]string, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	return out
}

// BigramID packs a two-byte substring into an integer: the first byte in
// the high bits. Working over IDs instead of two-byte strings keeps bigram
// signatures allocation-free and makes set operations a linear merge over
// sorted integer slices.
type BigramID uint16

// MakeBigramID packs two bytes into a BigramID.
func MakeBigramID(a, b byte) BigramID { return BigramID(a)<<8 | BigramID(b) }

// AppendBigramIDs appends the distinct bigram IDs of s to dst, sorted
// ascending, and returns the extended slice. A string shorter than two
// bytes contributes nothing. The result is the integer form of BigramSet.
func AppendBigramIDs(dst []BigramID, s string) []BigramID {
	start := len(dst)
	for i := 0; i+2 <= len(s); i++ {
		dst = append(dst, MakeBigramID(s[i], s[i+1]))
	}
	tail := dst[start:]
	if len(tail) < 2 {
		return dst
	}
	// Insertion sort: bigram signatures are short (one per input byte).
	for i := 1; i < len(tail); i++ {
		for j := i; j > 0 && tail[j] < tail[j-1]; j-- {
			tail[j], tail[j-1] = tail[j-1], tail[j]
		}
	}
	// Deduplicate in place.
	out := tail[:1]
	for _, g := range tail[1:] {
		if g != out[len(out)-1] {
			out = append(out, g)
		}
	}
	return dst[:start+len(out)]
}

// JaccardBigramIDs returns |A ∩ B| / |A ∪ B| over two sorted distinct
// bigram-ID slices — the merge-based form of Jaccard's map intersection.
// Either side empty yields 0, matching Jaccard on sub-bigram strings.
func JaccardBigramIDs(a, b []BigramID) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// ShareBigram reports whether two strings have at least one bigram in
// common.
func ShareBigram(a, b string) bool {
	if len(a) < 2 || len(b) < 2 {
		return false
	}
	ga := Bigrams(a)
	for i := 0; i+2 <= len(b); i++ {
		if ga[b[i:i+2]] > 0 {
			return true
		}
	}
	return false
}

// Jaccard returns the Jaccard coefficient of the bigram sets of two strings:
// |A ∩ B| / |A ∪ B|. Strings shorter than two characters fall back to exact
// comparison.
func Jaccard(a, b string) float64 {
	if a == b {
		if a == "" {
			return 0
		}
		return 1
	}
	ga, gb := Bigrams(a), Bigrams(b)
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := 0
	for g := range ga {
		if gb[g] > 0 {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	return float64(inter) / float64(union)
}

// TokenJaccard returns the Jaccard coefficient over whitespace-separated
// tokens, used for multi-word strings such as occupations and causes of
// death.
func TokenJaccard(a, b string) float64 {
	ta, tb := fields(a), fields(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	seen := map[string]bool{}
	for _, t := range ta {
		seen[t] = true
	}
	inter := 0
	interSeen := map[string]bool{}
	for _, t := range tb {
		if seen[t] && !interSeen[t] {
			inter++
			interSeen[t] = true
		}
	}
	// Union of distinct tokens.
	for _, t := range tb {
		seen[t] = true
	}
	return float64(inter) / float64(len(seen))
}

func fields(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// YearSim returns a maximum-absolute-difference similarity for two years:
// 1 when equal, falling linearly to 0 at a difference of maxDiff years.
func YearSim(a, b, maxDiff int) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	if d >= maxDiff {
		return 0
	}
	return 1 - float64(d)/float64(maxDiff)
}

// earthRadiusKm is the mean Earth radius used by the haversine formula.
const earthRadiusKm = 6371.0

// GeoDistanceKm returns the haversine distance in kilometres between two
// geocoded points.
func GeoDistanceKm(lat1, lon1, lat2, lon2 float64) float64 {
	const degToRad = math.Pi / 180
	dLat := (lat2 - lat1) * degToRad
	dLon := (lon2 - lon1) * degToRad
	sLat := math.Sin(dLat / 2)
	sLon := math.Sin(dLon / 2)
	h := sLat*sLat + math.Cos(lat1*degToRad)*math.Cos(lat2*degToRad)*sLon*sLon
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// GeoSim converts a geodesic distance to a similarity: 1 at zero distance,
// decaying linearly to 0 at maxKm.
func GeoSim(lat1, lon1, lat2, lon2, maxKm float64) float64 {
	if (lat1 == 0 && lon1 == 0) || (lat2 == 0 && lon2 == 0) {
		return 0
	}
	d := GeoDistanceKm(lat1, lon1, lat2, lon2)
	if d >= maxKm {
		return 0
	}
	return 1 - d/maxKm
}

// Soundex returns the classic four-character Soundex code of an ASCII name.
// It is used as a secondary blocking key and as a cross-check in tests.
func Soundex(s string) string {
	if s == "" {
		return ""
	}
	code := func(c byte) byte {
		switch c {
		case 'b', 'f', 'p', 'v', 'B', 'F', 'P', 'V':
			return '1'
		case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z', 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
			return '2'
		case 'd', 't', 'D', 'T':
			return '3'
		case 'l', 'L':
			return '4'
		case 'm', 'n', 'M', 'N':
			return '5'
		case 'r', 'R':
			return '6'
		}
		return 0
	}
	first := s[0]
	if first >= 'a' && first <= 'z' {
		first -= 'a' - 'A'
	}
	out := []byte{first}
	prev := code(s[0])
	for i := 1; i < len(s) && len(out) < 4; i++ {
		c := code(s[i])
		if c != 0 && c != prev {
			out = append(out, c)
		}
		if s[i] != 'h' && s[i] != 'w' && s[i] != 'H' && s[i] != 'W' {
			prev = c
		}
	}
	for len(out) < 4 {
		out = append(out, '0')
	}
	return string(out)
}

// MongeElkan returns the directed Monge-Elkan similarity of two multi-token
// strings: the mean, over tokens of a, of each token's best Jaro-Winkler
// match among the tokens of b. It is asymmetric; use SymMongeElkan for a
// symmetric score.
func MongeElkan(a, b string) float64 {
	ta, tb := fields(a), fields(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := JaroWinkler(x, y); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}

// SymMongeElkan returns the symmetric Monge-Elkan similarity: the minimum
// of the two directed scores, so extra unmatched tokens on either side
// lower it. It handles transposed double forenames ("jane elizabeth" vs
// "elizabeth jane") that character-level measures miss.
func SymMongeElkan(a, b string) float64 {
	return symMongeElkanTokens(fields(a), fields(b))
}

// SymMongeElkanTokens is SymMongeElkan over pre-split token slices, the
// entry point for callers (internal/simcache) that cache token splits per
// interned value and must not pay the re-tokenisation.
func SymMongeElkanTokens(ta, tb []string) float64 { return symMongeElkanTokens(ta, tb) }

// Fields splits s on spaces and tabs, the tokenisation used by the token-
// level similarities. The returned substrings share s's backing bytes.
func Fields(s string) []string { return fields(s) }

// symMongeElkanTokens computes both directed Monge-Elkan scores from one
// pass over the token similarity matrix (Jaro-Winkler is symmetric, so
// JW(x,y) serves both directions) and returns their minimum.
func symMongeElkanTokens(ta, tb []string) float64 {
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	// Multi-token names rarely exceed a handful of tokens; a stack buffer
	// keeps the per-call column maxima allocation-free.
	var colBuf [8]float64
	var colBest []float64
	if len(tb) <= len(colBuf) {
		colBest = colBuf[:len(tb)]
		for i := range colBest {
			colBest[i] = 0
		}
	} else {
		colBest = make([]float64, len(tb))
	}
	sumRow := 0.0
	for _, x := range ta {
		rowBest := 0.0
		for j, y := range tb {
			s := JaroWinkler(x, y)
			if s > rowBest {
				rowBest = s
			}
			if s > colBest[j] {
				colBest[j] = s
			}
		}
		sumRow += rowBest
	}
	sumCol := 0.0
	for _, s := range colBest {
		sumCol += s
	}
	ab := sumRow / float64(len(ta))
	ba := sumCol / float64(len(tb))
	if ba < ab {
		return ba
	}
	return ab
}

// NameSim is the first-name comparison used by SNAPS: plain Jaro-Winkler
// for single tokens, raised to the symmetric Monge-Elkan score when either
// name has multiple tokens (so re-ordered or partially recorded double
// forenames still match).
func NameSim(a, b string) float64 {
	if a == b {
		// Identical names score 1 under both Jaro-Winkler and symmetric
		// Monge-Elkan (every token matches itself), so skip the token
		// split entirely. Propagated entity values repeat the same
		// strings constantly, making this the most common call shape.
		if a == "" {
			return 0
		}
		return 1
	}
	s := JaroWinkler(a, b)
	if hasSpace(a) || hasSpace(b) {
		if me := SymMongeElkan(a, b); me > s {
			s = me
		}
	}
	return s
}

func hasSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return true
		}
	}
	return false
}
