package strsim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaroKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.9444444444444445},
		{"dixon", "dicksonx", 0.7666666666666666},
		{"jellyfish", "smellyfish", 0.8962962962962964},
		{"abc", "abc", 1},
		{"", "", 0},
		{"abc", "", 0},
		{"", "abc", 0},
		{"a", "b", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); !almost(got, c.want) {
			t.Errorf("Jaro(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.9611111111111111},
		{"dixon", "dicksonx", 0.8133333333333332},
		{"smith", "smith", 1},
		{"tayler", "taylor", 8.0/9.0 + 4*0.1*(1-8.0/9.0)},
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); !almost(got, c.want) {
			t.Errorf("JaroWinkler(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		return almost(Jaro(a, b), Jaro(b, a))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestJaroWinklerBounds(t *testing.T) {
	f := func(a, b string) bool {
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestJaroWinklerAtLeastJaro(t *testing.T) {
	f := func(a, b string) bool {
		return JaroWinkler(a, b) >= Jaro(a, b)-1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"a", "ab", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSymmetryAndIdentity(t *testing.T) {
	f := func(a, b string) bool {
		if Levenshtein(a, a) != 0 {
			return false
		}
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestEditSimBounds(t *testing.T) {
	f := func(a, b string) bool {
		s := EditSim(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestBigrams(t *testing.T) {
	g := Bigrams("banana")
	want := map[string]int{"ba": 1, "an": 2, "na": 2}
	if len(g) != len(want) {
		t.Fatalf("Bigrams(banana) = %v, want %v", g, want)
	}
	for k, v := range want {
		if g[k] != v {
			t.Errorf("Bigrams(banana)[%q] = %d, want %d", k, g[k], v)
		}
	}
	if len(Bigrams("a")) != 0 {
		t.Error("Bigrams of single char should be empty")
	}
	if len(Bigrams("")) != 0 {
		t.Error("Bigrams of empty string should be empty")
	}
}

func TestShareBigram(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"smith", "smyth", true},
		{"smith", "jones", false},
		{"ab", "ab", true},
		{"a", "ab", false},
		{"", "ab", false},
	}
	for _, c := range cases {
		if got := ShareBigram(c.a, c.b); got != c.want {
			t.Errorf("ShareBigram(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardKnownValues(t *testing.T) {
	// bigrams("night") = {ni ig gh ht}, bigrams("nacht") = {na ac ch ht}
	// intersection {ht} = 1, union = 7
	if got := Jaccard("night", "nacht"); !almost(got, 1.0/7.0) {
		t.Errorf("Jaccard(night, nacht) = %v, want 1/7", got)
	}
	if got := Jaccard("same", "same"); got != 1 {
		t.Errorf("Jaccard identical = %v, want 1", got)
	}
	if got := Jaccard("", ""); got != 0 {
		t.Errorf("Jaccard empty = %v, want 0", got)
	}
}

func TestJaccardSymmetricBounded(t *testing.T) {
	f := func(a, b string) bool {
		s := Jaccard(a, b)
		return s >= 0 && s <= 1 && almost(s, Jaccard(b, a))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestTokenJaccard(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"farm servant", "farm labourer", 1.0 / 3.0},
		{"farmer", "farmer", 1},
		{"a b c", "a b c", 1},
		{"", "farmer", 0},
		{"  spaced   out  ", "spaced out", 1},
	}
	for _, c := range cases {
		if got := TokenJaccard(c.a, c.b); !almost(got, c.want) {
			t.Errorf("TokenJaccard(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestYearSim(t *testing.T) {
	cases := []struct {
		a, b, maxDiff int
		want          float64
	}{
		{1880, 1880, 5, 1},
		{1880, 1882, 5, 0.6},
		{1880, 1885, 5, 0},
		{1880, 1900, 5, 0},
		{0, 1880, 5, 0},
		{1882, 1880, 5, 0.6},
	}
	for _, c := range cases {
		if got := YearSim(c.a, c.b, c.maxDiff); !almost(got, c.want) {
			t.Errorf("YearSim(%d, %d, %d) = %v, want %v", c.a, c.b, c.maxDiff, got, c.want)
		}
	}
}

func TestGeoDistance(t *testing.T) {
	// Portree (57.4125, -6.1964) to Kilmore (57.24, -5.90) should be ~25 km.
	d := GeoDistanceKm(57.4125, -6.1964, 57.24, -5.90)
	if d < 20 || d > 35 {
		t.Errorf("GeoDistanceKm Portree-Kilmore = %v, want ~25", d)
	}
	if got := GeoDistanceKm(57, -6, 57, -6); !almost(got, 0) {
		t.Errorf("distance to self = %v, want 0", got)
	}
}

func TestGeoSim(t *testing.T) {
	if got := GeoSim(57, -6, 57, -6, 50); got != 1 {
		t.Errorf("GeoSim same point = %v, want 1", got)
	}
	if got := GeoSim(0, 0, 57, -6, 50); got != 0 {
		t.Errorf("GeoSim missing geocode = %v, want 0", got)
	}
	far := GeoSim(57, -6, 55, -4, 50)
	if far != 0 {
		t.Errorf("GeoSim far points = %v, want 0", far)
	}
}

func TestSoundex(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"},
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"smith", "S530"},
		{"smyth", "S530"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// quickCfg constrains generated strings to short lowercase ASCII, the domain
// strsim operates on, keeping property tests fast and meaningful.
func quickCfg() *quick.Config {
	r := rand.New(rand.NewSource(42))
	return &quick.Config{
		MaxCount: 300,
		Rand:     r,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				n := r.Intn(12)
				b := make([]byte, n)
				for j := range b {
					b[j] = byte('a' + r.Intn(26))
				}
				vals[i] = reflect.ValueOf(string(b))
			}
		},
	}
}

func TestMongeElkan(t *testing.T) {
	if got := MongeElkan("mary", "mary ann"); got != 1 {
		t.Errorf("directed ME(mary, mary ann) = %v, want 1 (every token of a matches)", got)
	}
	rev := MongeElkan("mary ann", "mary")
	if rev >= 1 {
		t.Errorf("directed ME(mary ann, mary) = %v, want < 1 (ann unmatched)", rev)
	}
	if got := MongeElkan("", "mary"); got != 0 {
		t.Errorf("empty ME = %v", got)
	}
}

func TestSymMongeElkanTransposedNames(t *testing.T) {
	got := SymMongeElkan("jane elizabeth", "elizabeth jane")
	if got != 1 {
		t.Errorf("transposed double forenames = %v, want 1", got)
	}
	partial := SymMongeElkan("mary ann", "mary")
	if partial >= 1 || partial < 0.5 {
		t.Errorf("partial double forename = %v, want mid-range", partial)
	}
}

func TestSymMongeElkanSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return almost(SymMongeElkan(a, b), SymMongeElkan(b, a))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestNameSim(t *testing.T) {
	// Single tokens: identical to Jaro-Winkler.
	if NameSim("mary", "marry") != JaroWinkler("mary", "marry") {
		t.Error("single-token NameSim should equal Jaro-Winkler")
	}
	// Transposed doubles: rescued by Monge-Elkan.
	if got := NameSim("jane elizabeth", "elizabeth jane"); got != 1 {
		t.Errorf("NameSim transposed = %v, want 1", got)
	}
	// NameSim never scores below Jaro-Winkler.
	f := func(a, b string) bool {
		return NameSim(a, b) >= JaroWinkler(a, b)-1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
