// Package symbol implements the process-wide string-interning symbol table
// behind the integer-coded record attributes of internal/model.
//
// Historical vital-records data is massively repetitive: a few thousand
// distinct first names, surnames, addresses, and occupations cover tens of
// millions of records. Storing each occurrence as its own string costs a
// 16-byte header plus duplicated backing bytes per mention; interning
// collapses every occurrence of a value to one 4-byte ID and stores the
// bytes once. At DS scale (~24M certificates) that is the difference
// between a data set that fits in memory and one that does not.
//
// The table is append-only and index-stable: an ID, once issued, names the
// same string for the life of the process, so IDs can be compared for
// equality, embedded in records, shared across model.Dataset clones (the
// live-ingest pipeline clones the data set on every flush), and written to
// snapshots (remapped to a dense per-file table, see internal/store).
// Lookups by ID are a lock-free slice index; interning takes a mutex only
// on the slow path that inserts a new value.
package symbol

import (
	"sync"
	"sync/atomic"
)

// ID names an interned string. The zero ID is the empty string, so
// zero-valued records have all attributes missing, matching the previous
// string representation.
type ID uint32

// None is the ID of the empty string (the "missing value" of the QID
// attribute model).
const None ID = 0

// table is the global symbol table. strs is an immutable snapshot of the
// interned strings, replaced wholesale on growth, so readers index it
// without locks; ids and the append path are guarded by mu.
var table = struct {
	mu    sync.Mutex
	ids   map[string]ID
	strs  atomic.Pointer[[]string]
	bytes atomic.Int64 // total interned string bytes, for footprint stats
}{ids: map[string]ID{"": None}}

func init() {
	initial := []string{""}
	table.strs.Store(&initial)
}

// Intern returns the ID of s, issuing a new one if s has never been seen.
// The empty string is always None.
func Intern(s string) ID {
	if s == "" {
		return None
	}
	// Fast path: value already interned. The ids map is only written under
	// mu, so reads must also synchronise — but most callers intern in
	// batches where the same values recur, so the read lock is cheap
	// relative to the similarity math around it.
	table.mu.Lock()
	if id, ok := table.ids[s]; ok {
		table.mu.Unlock()
		return id
	}
	strs := *table.strs.Load()
	id := ID(len(strs))
	// Publishing a longer header over the same backing array is safe: a
	// reader holding an older snapshot has a shorter len and can never
	// index the slot being written. When append reallocates, the old
	// snapshot keeps the old array. Either way, published entries are
	// immutable and interning stays amortised O(1).
	next := append(strs, s)
	table.strs.Store(&next)
	table.ids[s] = id
	table.bytes.Add(int64(len(s)))
	table.mu.Unlock()
	return id
}

// Lookup returns the ID of s if it is interned, without interning it.
func Lookup(s string) (ID, bool) {
	if s == "" {
		return None, true
	}
	table.mu.Lock()
	id, ok := table.ids[s]
	table.mu.Unlock()
	return id, ok
}

// Str returns the string named by id. IDs never issued resolve to "" (they
// can only come from corrupted input; snapshot loading validates IDs before
// constructing records).
func Str(id ID) string {
	strs := *table.strs.Load()
	if int(id) >= len(strs) {
		return ""
	}
	return strs[id]
}

// Valid reports whether id has been issued.
func Valid(id ID) bool {
	return int(id) < len(*table.strs.Load())
}

// Len returns the number of interned strings (the empty string included).
func Len() int {
	return len(*table.strs.Load())
}

// Bytes returns the total backing bytes of all interned strings — the
// shared, deduplicated cost the bytes-per-record accounting amortises over
// every record referencing the table.
func Bytes() int64 {
	return table.bytes.Load()
}
