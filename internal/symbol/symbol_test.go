package symbol

import (
	"fmt"
	"sync"
	"testing"
)

func TestEmptyIsNone(t *testing.T) {
	if Intern("") != None {
		t.Fatalf("Intern(\"\") = %d, want None", Intern(""))
	}
	if Str(None) != "" {
		t.Fatalf("Str(None) = %q, want empty", Str(None))
	}
}

func TestRoundTrip(t *testing.T) {
	values := []string{"john", "mary", "macdonald", "7 portree", "crofter"}
	ids := make([]ID, len(values))
	for i, v := range values {
		ids[i] = Intern(v)
	}
	for i, v := range values {
		if got := Intern(v); got != ids[i] {
			t.Errorf("Intern(%q) not stable: %d then %d", v, ids[i], got)
		}
		if got := Str(ids[i]); got != v {
			t.Errorf("Str(%d) = %q, want %q", ids[i], got, v)
		}
		if id, ok := Lookup(v); !ok || id != ids[i] {
			t.Errorf("Lookup(%q) = %d,%v want %d,true", v, id, ok, ids[i])
		}
	}
}

func TestUnknownIDResolvesEmpty(t *testing.T) {
	if got := Str(ID(1 << 30)); got != "" {
		t.Fatalf("Str(huge) = %q, want empty", got)
	}
	if Valid(ID(1 << 30)) {
		t.Fatal("Valid(huge) = true")
	}
}

// TestConcurrentIntern hammers Intern and Str from many goroutines; run
// with -race this guards the snapshot-publishing protocol.
func TestConcurrentIntern(t *testing.T) {
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	ids := make([][]ID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]ID, perWorker)
			for i := 0; i < perWorker; i++ {
				// Overlapping value universes force both the hit and the
				// insert path.
				v := fmt.Sprintf("concurrent-%d", i%(perWorker/2))
				ids[w][i] = Intern(v)
				if got := Str(ids[w][i]); got != v {
					t.Errorf("Str after Intern(%q) = %q", v, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range ids[w] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got id %d for value %d, worker 0 got %d", w, ids[w][i], i, ids[0][i])
			}
		}
	}
}
