// Package tuning learns the query-ranking match weights from ground truth,
// the future work Sec. 7 of the paper sketches ("we aim to learn optimal
// match weights based on ground truth data"). A workload of self-retrieval
// queries is sampled from the resolved data — each query carries the
// (noisy) values of one record and its target entity — and coordinate
// descent over the weight simplex maximises the mean reciprocal rank of the
// targets.
package tuning

import (
	"math/rand"

	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
)

// LabelledQuery pairs a query with the entity it should retrieve.
type LabelledQuery struct {
	Query  query.Query
	Target pedigree.NodeID
}

// SampleQueries draws up to n self-retrieval queries: for random records of
// multi-record entities, the query takes the record's own (transcribed,
// hence noisy) name values plus gender and a year window, and the target is
// the record's entity.
func SampleQueries(g *pedigree.Graph, n int, seed int64) []LabelledQuery {
	rng := rand.New(rand.NewSource(seed))
	var candidates []pedigree.NodeID
	for i := range g.Nodes {
		node := &g.Nodes[i]
		if len(node.Records) >= 2 && len(node.FirstNames) > 0 && len(node.Surnames) > 0 {
			candidates = append(candidates, node.ID)
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	if len(candidates) > n {
		candidates = candidates[:n]
	}
	var out []LabelledQuery
	for _, id := range candidates {
		node := g.Node(id)
		rec := g.Dataset.Record(node.Records[rng.Intn(len(node.Records))])
		if rec.First == 0 || rec.Sur == 0 {
			continue
		}
		q := query.Query{
			FirstName: rec.FirstName(),
			Surname:   rec.Surname(),
			Gender:    node.Gender,
		}
		if node.MinYear != 0 {
			q.YearFrom, q.YearTo = node.MinYear-2, node.MaxYear+2
		}
		if len(node.Locations) > 0 {
			q.Location = node.Locations[0]
		}
		out = append(out, LabelledQuery{Query: q, Target: id})
	}
	return out
}

// MRR evaluates the mean reciprocal rank of the targets under the engine's
// current weights. Targets absent from the result list score zero.
func MRR(e *query.Engine, qs []LabelledQuery) float64 {
	if len(qs) == 0 {
		return 0
	}
	sum := 0.0
	for _, lq := range qs {
		for rank, r := range e.Search(lq.Query) {
			if r.Entity == lq.Target {
				sum += 1 / float64(rank+1)
				break
			}
		}
	}
	return sum / float64(len(qs))
}

// Config bounds the search.
type Config struct {
	// Grid lists the candidate values per weight coordinate.
	Grid []float64
	// Rounds of coordinate descent over the five weights.
	Rounds int
}

// DefaultConfig explores a coarse grid for two rounds, enough to move each
// weight to its neighbourhood optimum.
func DefaultConfig() Config {
	return Config{Grid: []float64{0.05, 0.1, 0.2, 0.35, 0.5}, Rounds: 2}
}

// Tune learns weights maximising MRR on the training queries, starting from
// the engine's current weights. The engine's weights are left at the best
// found setting, which is also returned with its training MRR.
func Tune(e *query.Engine, train []LabelledQuery, cfg Config) (query.Weights, float64) {
	if len(cfg.Grid) == 0 {
		cfg = DefaultConfig()
	}
	best := e.Weights
	bestScore := MRR(e, train)

	coords := []func(*query.Weights) *float64{
		func(w *query.Weights) *float64 { return &w.FirstName },
		func(w *query.Weights) *float64 { return &w.Surname },
		func(w *query.Weights) *float64 { return &w.Gender },
		func(w *query.Weights) *float64 { return &w.Year },
		func(w *query.Weights) *float64 { return &w.Location },
	}
	for round := 0; round < cfg.Rounds; round++ {
		for _, coord := range coords {
			for _, v := range cfg.Grid {
				cand := best
				*coord(&cand) = v
				e.Weights = cand
				if score := MRR(e, train); score > bestScore {
					best, bestScore = cand, score
				}
			}
		}
	}
	e.Weights = best
	return best, bestScore
}

// Evaluate reports MRR and the hit rate at the given cutoffs (fraction of
// queries whose target appears in the top k).
func Evaluate(e *query.Engine, qs []LabelledQuery, ks ...int) (mrr float64, hitAt map[int]float64) {
	hitAt = map[int]float64{}
	if len(qs) == 0 {
		return 0, hitAt
	}
	hits := map[int]int{}
	sum := 0.0
	for _, lq := range qs {
		results := e.Search(lq.Query)
		for rank, r := range results {
			if r.Entity == lq.Target {
				sum += 1 / float64(rank+1)
				for _, k := range ks {
					if rank < k {
						hits[k]++
					}
				}
				break
			}
		}
	}
	for _, k := range ks {
		hitAt[k] = float64(hits[k]) / float64(len(qs))
	}
	return sum / float64(len(qs)), hitAt
}
