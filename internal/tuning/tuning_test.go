package tuning

import (
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
)

func builtEngine(t *testing.T) *query.Engine {
	t.Helper()
	p := dataset.Generate(dataset.IOS().Scaled(0.06))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(p.Dataset, pr.Result.Store)
	k, s := index.Build(g, 0.5)
	return query.NewEngine(g, k, s)
}

func TestSampleQueries(t *testing.T) {
	e := builtEngine(t)
	qs := SampleQueries(e.Graph, 50, 1)
	if len(qs) == 0 {
		t.Fatal("no queries sampled")
	}
	for _, lq := range qs {
		if lq.Query.FirstName == "" || lq.Query.Surname == "" {
			t.Fatal("sampled query missing mandatory names")
		}
		if int(lq.Target) < 0 || int(lq.Target) >= len(e.Graph.Nodes) {
			t.Fatal("invalid target")
		}
	}
	// Deterministic for a fixed seed.
	qs2 := SampleQueries(e.Graph, 50, 1)
	if len(qs) != len(qs2) || qs[0] != qs2[0] {
		t.Error("sampling not deterministic")
	}
}

func TestMRRBounds(t *testing.T) {
	e := builtEngine(t)
	qs := SampleQueries(e.Graph, 40, 2)
	m := MRR(e, qs)
	if m < 0 || m > 1 {
		t.Fatalf("MRR = %v out of [0,1]", m)
	}
	if m == 0 {
		t.Error("self-retrieval MRR should be positive")
	}
	if MRR(e, nil) != 0 {
		t.Error("empty workload should score 0")
	}
}

func TestTuneNeverWorsens(t *testing.T) {
	e := builtEngine(t)
	qs := SampleQueries(e.Graph, 40, 3)
	before := MRR(e, qs)
	w, after := Tune(e, qs, Config{Grid: []float64{0.1, 0.35}, Rounds: 1})
	if after < before-1e-12 {
		t.Fatalf("tuning worsened MRR: %v -> %v", before, after)
	}
	if e.Weights != w {
		t.Error("engine should keep the tuned weights")
	}
}

func TestEvaluateHitRates(t *testing.T) {
	e := builtEngine(t)
	qs := SampleQueries(e.Graph, 40, 4)
	mrr, hitAt := Evaluate(e, qs, 1, 5)
	if mrr <= 0 {
		t.Error("expected positive MRR")
	}
	if hitAt[5] < hitAt[1] {
		t.Error("hit@5 must be at least hit@1")
	}
	if hitAt[5] > 1 || hitAt[1] < 0 {
		t.Error("hit rates out of range")
	}
}
