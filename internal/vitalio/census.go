package vitalio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/snaps/snaps/internal/model"
)

// Census households are exported/imported with a fixed six-child schema
// matching the model's census roles. Ages are recorded per member, as in
// real enumerations, and become BirthHint values on import.
//
// Schema: id,year,head_first,head_sur,head_age,wife_first,wife_sur,
// wife_age,child1_first,child1_sur,child1_age,...,child6_first,child6_sur,
// child6_age[,head_truth,wife_truth,child1_truth,...,child6_truth]

// CensusHeader is the census household CSV header (without truth columns).
var CensusHeader = buildCensusHeader()

func buildCensusHeader() []string {
	h := []string{"id", "year", "head_first", "head_sur", "head_age",
		"wife_first", "wife_sur", "wife_age"}
	for i := 1; i <= len(model.CensusChildRoles); i++ {
		h = append(h,
			fmt.Sprintf("child%d_first", i),
			fmt.Sprintf("child%d_sur", i),
			fmt.Sprintf("child%d_age", i))
	}
	return h
}

const censusTruthCols = 8 // head, wife, six children

// ReadCensus parses a census household CSV stream.
func (r *Reader) ReadCensus(src io.Reader) error {
	return r.read(src, model.Census, CensusHeader, censusTruthCols, r.parseCensus)
}

func (r *Reader) parseCensus(row, truth []string) error {
	year, err := parseYear(row[1])
	if err != nil {
		return err
	}
	certID := model.CertID(len(r.d.Certificates))
	cert := model.Certificate{
		ID: certID, Type: model.Census, Year: year,
		Roles: map[model.Role]model.RecordID{}, Age: -1,
	}
	addMember := func(role model.Role, first, sur, ageStr string, gender model.Gender, truthIdx int) bool {
		id, ok := r.addRecord(certID, role, first, sur, "", "", year, gender, parseTruth(truth, truthIdx))
		if !ok {
			return false
		}
		cert.Roles[role] = id
		if age, err := strconv.Atoi(ageStr); err == nil && age >= 0 && year != 0 {
			r.d.Records[id].BirthHint = year - age
		}
		return true
	}
	head := addMember(model.Cf, row[2], row[3], row[4], model.Male, 0)
	wife := addMember(model.Cm, row[5], row[6], row[7], model.Female, 1)
	if !head && !wife {
		return fmt.Errorf("census household without a head")
	}
	for i, cc := range model.CensusChildRoles {
		base := 8 + 3*i
		addMember(cc, row[base], row[base+1], row[base+2], model.GenderUnknown, 2+i)
	}
	r.d.Certificates = append(r.d.Certificates, cert)
	return nil
}

// WriteCensus writes all census households.
func (w *Writer) WriteCensus(dst io.Writer) error {
	cw := csv.NewWriter(dst)
	header := CensusHeader
	if w.IncludeTruth {
		header = append(append([]string{}, header...),
			"head_truth", "wife_truth",
			"child1_truth", "child2_truth", "child3_truth",
			"child4_truth", "child5_truth", "child6_truth")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range w.d.Certificates {
		c := &w.d.Certificates[i]
		if c.Type != model.Census {
			continue
		}
		row := []string{strconv.Itoa(int(c.ID)), strconv.Itoa(c.Year)}
		var truths []string
		appendMember := func(role model.Role) {
			rec := w.rec(c, role)
			age := ""
			if rec != nil && rec.BirthHint != 0 && c.Year != 0 {
				a := c.Year - rec.BirthHint
				if a < 0 {
					a = 0 // a mis-stated age cannot be negative on paper
				}
				age = strconv.Itoa(a)
			}
			row = append(row, first(rec), sur(rec), age)
			truths = append(truths, truthStr(rec))
		}
		appendMember(model.Cf)
		appendMember(model.Cm)
		for _, cc := range model.CensusChildRoles {
			appendMember(cc)
		}
		if w.IncludeTruth {
			row = append(row, truths...)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
