// Package vitalio reads and writes vital-records data sets as CSV files,
// one file per certificate type, so that SNAPS can be applied to real
// transcribed certificates rather than only the built-in simulator.
//
// The schemas mirror the column structure of transcribed Scottish statutory
// registers (and of the published BHIC open-data dumps): every certificate
// row carries the event fields plus the name/address/occupation fields of
// each role on the certificate. Empty cells are missing values. An optional
// truth column carries ground-truth person identifiers for evaluation data.
//
// Births:    id,year,baby_first,baby_sur,baby_gender,mother_first,mother_sur,
//
//	father_first,father_sur,address,father_occupation[,baby_truth,
//	mother_truth,father_truth]
//
// Deaths:    id,year,deceased_first,deceased_sur,deceased_gender,age,cause,
//
//	mother_first,mother_sur,father_first,father_sur,spouse_first,
//	spouse_sur,address,occupation[,deceased_truth,mother_truth,
//	father_truth,spouse_truth]
//
// Marriages: id,year,groom_first,groom_sur,bride_first,bride_sur,
//
//	groom_mother_first,groom_mother_sur,groom_father_first,
//	groom_father_sur,bride_mother_first,bride_mother_sur,
//	bride_father_first,bride_father_sur,address[,groom_truth,
//	bride_truth,gm_truth,gf_truth,bm_truth,bf_truth]
package vitalio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/snaps/snaps/internal/model"
)

// Header rows of the three schemas (without the optional truth columns).
var (
	BirthHeader = []string{
		"id", "year", "baby_first", "baby_sur", "baby_gender",
		"mother_first", "mother_sur", "father_first", "father_sur",
		"address", "father_occupation",
	}
	DeathHeader = []string{
		"id", "year", "deceased_first", "deceased_sur", "deceased_gender",
		"age", "cause", "mother_first", "mother_sur", "father_first",
		"father_sur", "spouse_first", "spouse_sur", "address", "occupation",
	}
	MarriageHeader = []string{
		"id", "year", "groom_first", "groom_sur", "bride_first", "bride_sur",
		"groom_mother_first", "groom_mother_sur",
		"groom_father_first", "groom_father_sur",
		"bride_mother_first", "bride_mother_sur",
		"bride_father_first", "bride_father_sur", "address",
	}
)

// truth column counts per certificate type.
const (
	birthTruthCols    = 3
	deathTruthCols    = 4
	marriageTruthCols = 6
)

// Reader accumulates certificates parsed from the three CSV streams into a
// model.Dataset.
type Reader struct {
	d *model.Dataset
}

// NewReader returns a reader building a data set with the given name.
func NewReader(name string) *Reader {
	return &Reader{d: &model.Dataset{Name: name}}
}

// Dataset returns the accumulated data set.
func (r *Reader) Dataset() *model.Dataset { return r.d }

// ReadBirths parses a births CSV stream.
func (r *Reader) ReadBirths(src io.Reader) error {
	return r.read(src, model.Birth, BirthHeader, birthTruthCols, r.parseBirth)
}

// ReadDeaths parses a deaths CSV stream.
func (r *Reader) ReadDeaths(src io.Reader) error {
	return r.read(src, model.Death, DeathHeader, deathTruthCols, r.parseDeath)
}

// ReadMarriages parses a marriages CSV stream.
func (r *Reader) ReadMarriages(src io.Reader) error {
	return r.read(src, model.Marriage, MarriageHeader, marriageTruthCols, r.parseMarriage)
}

func (r *Reader) read(src io.Reader, t model.CertType, header []string, truthCols int,
	parse func(row []string, truth []string) error) error {
	cr := csv.NewReader(src)
	cr.FieldsPerRecord = -1
	first := true
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("vitalio: %s row %d: %w", t, line, err)
		}
		line++
		if first {
			first = false
			if len(row) > 0 && strings.EqualFold(row[0], "id") {
				continue // header row
			}
		}
		if len(row) != len(header) && len(row) != len(header)+truthCols {
			return fmt.Errorf("vitalio: %s row %d: %d columns, want %d or %d",
				t, line, len(row), len(header), len(header)+truthCols)
		}
		var truth []string
		if len(row) == len(header)+truthCols {
			truth = row[len(header):]
			row = row[:len(header)]
		}
		if err := parse(row, truth); err != nil {
			return fmt.Errorf("vitalio: %s row %d: %w", t, line, err)
		}
	}
}

// addRecord appends a role record; empty first AND surname with no role
// presence is signalled by returning false.
func (r *Reader) addRecord(cert model.CertID, role model.Role, first, sur, addr, occ string,
	year int, gender model.Gender, truth model.PersonID) (model.RecordID, bool) {
	if first == "" && sur == "" {
		return 0, false // role absent from the certificate
	}
	id := model.RecordID(len(r.d.Records))
	r.d.Records = append(r.d.Records, model.Record{
		ID: id, Cert: cert, Role: role, Gender: gender,
		First: model.Intern(norm(first)), Sur: model.Intern(norm(sur)),
		Addr: model.Intern(norm(addr)), Occ: model.Intern(norm(occ)),
		Year: year, Truth: truth,
	})
	return id, true
}

func norm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

func parseGender(s string) model.Gender {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "m", "male":
		return model.Male
	case "f", "female":
		return model.Female
	}
	return model.GenderUnknown
}

func parseYear(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	y, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad year %q", s)
	}
	return y, nil
}

func parseTruth(truth []string, i int) model.PersonID {
	if i >= len(truth) {
		return model.NoPerson
	}
	s := strings.TrimSpace(truth[i])
	if s == "" {
		return model.NoPerson
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return model.NoPerson
	}
	return model.PersonID(v)
}

func (r *Reader) parseBirth(row, truth []string) error {
	year, err := parseYear(row[1])
	if err != nil {
		return err
	}
	certID := model.CertID(len(r.d.Certificates))
	cert := model.Certificate{
		ID: certID, Type: model.Birth, Year: year,
		Roles: map[model.Role]model.RecordID{}, Age: -1,
	}
	addr := row[9]
	if id, ok := r.addRecord(certID, model.Bb, row[2], row[3], addr, "", year, parseGender(row[4]), parseTruth(truth, 0)); ok {
		cert.Roles[model.Bb] = id
	} else {
		return fmt.Errorf("birth certificate without baby")
	}
	if id, ok := r.addRecord(certID, model.Bm, row[5], row[6], addr, "", year, model.Female, parseTruth(truth, 1)); ok {
		cert.Roles[model.Bm] = id
	}
	if id, ok := r.addRecord(certID, model.Bf, row[7], row[8], addr, row[10], year, model.Male, parseTruth(truth, 2)); ok {
		cert.Roles[model.Bf] = id
	}
	r.d.Certificates = append(r.d.Certificates, cert)
	return nil
}

func (r *Reader) parseDeath(row, truth []string) error {
	year, err := parseYear(row[1])
	if err != nil {
		return err
	}
	age := -1
	if s := strings.TrimSpace(row[5]); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			age = v
		}
	}
	certID := model.CertID(len(r.d.Certificates))
	cert := model.Certificate{
		ID: certID, Type: model.Death, Year: year,
		Roles: map[model.Role]model.RecordID{},
		Cause: norm(row[6]), Age: age,
	}
	addr := row[13]
	if id, ok := r.addRecord(certID, model.Dd, row[2], row[3], addr, row[14], year, parseGender(row[4]), parseTruth(truth, 0)); ok {
		cert.Roles[model.Dd] = id
		if age >= 0 && year != 0 {
			// The recorded age implies the deceased's birth year.
			r.d.Records[id].BirthHint = year - age
		}
	} else {
		return fmt.Errorf("death certificate without deceased")
	}
	if id, ok := r.addRecord(certID, model.Dm, row[7], row[8], "", "", year, model.Female, parseTruth(truth, 1)); ok {
		cert.Roles[model.Dm] = id
	}
	if id, ok := r.addRecord(certID, model.Df, row[9], row[10], "", "", year, model.Male, parseTruth(truth, 2)); ok {
		cert.Roles[model.Df] = id
	}
	if id, ok := r.addRecord(certID, model.Ds, row[11], row[12], addr, "", year, model.GenderUnknown, parseTruth(truth, 3)); ok {
		cert.Roles[model.Ds] = id
	}
	r.d.Certificates = append(r.d.Certificates, cert)
	return nil
}

func (r *Reader) parseMarriage(row, truth []string) error {
	year, err := parseYear(row[1])
	if err != nil {
		return err
	}
	certID := model.CertID(len(r.d.Certificates))
	cert := model.Certificate{
		ID: certID, Type: model.Marriage, Year: year,
		Roles: map[model.Role]model.RecordID{}, Age: -1,
	}
	addr := row[14]
	type roleSpec struct {
		role       model.Role
		first, sur int
		gender     model.Gender
		truthIdx   int
	}
	specs := []roleSpec{
		{model.Mm, 2, 3, model.Male, 0},
		{model.Mf, 4, 5, model.Female, 1},
		{model.Mmm, 6, 7, model.Female, 2},
		{model.Mmf, 8, 9, model.Male, 3},
		{model.Mfm, 10, 11, model.Female, 4},
		{model.Mff, 12, 13, model.Male, 5},
	}
	for _, sp := range specs {
		if id, ok := r.addRecord(certID, sp.role, row[sp.first], row[sp.sur], addr, "", year, sp.gender, parseTruth(truth, sp.truthIdx)); ok {
			cert.Roles[sp.role] = id
		} else if sp.role == model.Mm || sp.role == model.Mf {
			return fmt.Errorf("marriage certificate without %v", sp.role)
		}
	}
	r.d.Certificates = append(r.d.Certificates, cert)
	return nil
}

// Writer exports a model.Dataset back to the three CSV schemas.
type Writer struct {
	d *model.Dataset
	// IncludeTruth adds the ground-truth columns when set.
	IncludeTruth bool
}

// NewWriter returns a writer for the data set.
func NewWriter(d *model.Dataset, includeTruth bool) *Writer {
	return &Writer{d: d, IncludeTruth: includeTruth}
}

// WriteBirths writes all birth certificates.
func (w *Writer) WriteBirths(dst io.Writer) error {
	cw := csv.NewWriter(dst)
	header := BirthHeader
	if w.IncludeTruth {
		header = append(append([]string{}, header...), "baby_truth", "mother_truth", "father_truth")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range w.d.Certificates {
		c := &w.d.Certificates[i]
		if c.Type != model.Birth {
			continue
		}
		bb := w.rec(c, model.Bb)
		bm := w.rec(c, model.Bm)
		bf := w.rec(c, model.Bf)
		row := []string{
			strconv.Itoa(int(c.ID)), strconv.Itoa(c.Year),
			first(bb), sur(bb), gender(bb),
			first(bm), sur(bm), first(bf), sur(bf),
			addrOf(bb, bm, bf), occ(bf),
		}
		if w.IncludeTruth {
			row = append(row, truthStr(bb), truthStr(bm), truthStr(bf))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDeaths writes all death certificates.
func (w *Writer) WriteDeaths(dst io.Writer) error {
	cw := csv.NewWriter(dst)
	header := DeathHeader
	if w.IncludeTruth {
		header = append(append([]string{}, header...),
			"deceased_truth", "mother_truth", "father_truth", "spouse_truth")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range w.d.Certificates {
		c := &w.d.Certificates[i]
		if c.Type != model.Death {
			continue
		}
		dd := w.rec(c, model.Dd)
		dm := w.rec(c, model.Dm)
		df := w.rec(c, model.Df)
		ds := w.rec(c, model.Ds)
		age := ""
		if c.Age >= 0 {
			age = strconv.Itoa(c.Age)
		}
		row := []string{
			strconv.Itoa(int(c.ID)), strconv.Itoa(c.Year),
			first(dd), sur(dd), gender(dd), age, c.Cause,
			first(dm), sur(dm), first(df), sur(df),
			first(ds), sur(ds), addrOf(dd, ds), occ(dd),
		}
		if w.IncludeTruth {
			row = append(row, truthStr(dd), truthStr(dm), truthStr(df), truthStr(ds))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarriages writes all marriage certificates.
func (w *Writer) WriteMarriages(dst io.Writer) error {
	cw := csv.NewWriter(dst)
	header := MarriageHeader
	if w.IncludeTruth {
		header = append(append([]string{}, header...),
			"groom_truth", "bride_truth", "gm_truth", "gf_truth", "bm_truth", "bf_truth")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range w.d.Certificates {
		c := &w.d.Certificates[i]
		if c.Type != model.Marriage {
			continue
		}
		mm := w.rec(c, model.Mm)
		mf := w.rec(c, model.Mf)
		mmm := w.rec(c, model.Mmm)
		mmf := w.rec(c, model.Mmf)
		mfm := w.rec(c, model.Mfm)
		mff := w.rec(c, model.Mff)
		row := []string{
			strconv.Itoa(int(c.ID)), strconv.Itoa(c.Year),
			first(mm), sur(mm), first(mf), sur(mf),
			first(mmm), sur(mmm), first(mmf), sur(mmf),
			first(mfm), sur(mfm), first(mff), sur(mff),
			addrOf(mm, mf),
		}
		if w.IncludeTruth {
			row = append(row, truthStr(mm), truthStr(mf),
				truthStr(mmm), truthStr(mmf), truthStr(mfm), truthStr(mff))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func (w *Writer) rec(c *model.Certificate, role model.Role) *model.Record {
	id, ok := c.Roles[role]
	if !ok {
		return nil
	}
	return w.d.Record(id)
}

func first(r *model.Record) string {
	if r == nil {
		return ""
	}
	return r.FirstName()
}

func sur(r *model.Record) string {
	if r == nil {
		return ""
	}
	return r.Surname()
}

func occ(r *model.Record) string {
	if r == nil {
		return ""
	}
	return r.Occupation()
}

func gender(r *model.Record) string {
	if r == nil || r.Gender == model.GenderUnknown {
		return ""
	}
	return r.Gender.String()
}

func addrOf(rs ...*model.Record) string {
	for _, r := range rs {
		if r != nil && r.Addr != 0 {
			return r.Address()
		}
	}
	return ""
}

func truthStr(r *model.Record) string {
	if r == nil || r.Truth == model.NoPerson {
		return ""
	}
	return strconv.Itoa(int(r.Truth))
}
