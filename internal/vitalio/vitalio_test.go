package vitalio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/model"
)

const birthsCSV = `id,year,baby_first,baby_sur,baby_gender,mother_first,mother_sur,father_first,father_sur,address,father_occupation
0,1870,mary,macrae,f,kirsty,macrae,hector,macrae,5 portree,crofter
1,1872,john,macrae,m,kirsty,macrae,hector,macrae,5 portree,crofter
`

const deathsCSV = `id,year,deceased_first,deceased_sur,deceased_gender,age,cause,mother_first,mother_sur,father_first,father_sur,spouse_first,spouse_sur,address,occupation
2,1874,mary,macrae,f,4,measles,kirsty,macrae,hector,macrae,,,5 portree,
`

const marriagesCSV = `id,year,groom_first,groom_sur,bride_first,bride_sur,groom_mother_first,groom_mother_sur,groom_father_first,groom_father_sur,bride_mother_first,bride_mother_sur,bride_father_first,bride_father_sur,address
3,1869,hector,macrae,kirsty,gillies,ann,macrae,john,macrae,flora,gillies,angus,gillies,5 portree
`

func TestReadAllTypes(t *testing.T) {
	r := NewReader("test")
	if err := r.ReadBirths(strings.NewReader(birthsCSV)); err != nil {
		t.Fatal(err)
	}
	if err := r.ReadDeaths(strings.NewReader(deathsCSV)); err != nil {
		t.Fatal(err)
	}
	if err := r.ReadMarriages(strings.NewReader(marriagesCSV)); err != nil {
		t.Fatal(err)
	}
	d := r.Dataset()
	if len(d.Certificates) != 4 {
		t.Fatalf("certificates = %d, want 4", len(d.Certificates))
	}
	// Birth 0: three records.
	b0 := &d.Certificates[0]
	if b0.Type != model.Birth || len(b0.Roles) != 3 {
		t.Fatalf("birth 0: %+v", b0)
	}
	baby := d.Record(b0.Roles[model.Bb])
	if baby.FirstName() != "mary" || baby.Gender != model.Female || baby.Year != 1870 {
		t.Errorf("baby record: %+v", baby)
	}
	// Death: spouse absent (empty name columns).
	dd := &d.Certificates[2]
	if dd.Type != model.Death {
		t.Fatal("cert 2 should be a death")
	}
	if _, ok := dd.Roles[model.Ds]; ok {
		t.Error("empty spouse columns must not create a Ds record")
	}
	if dd.Cause != "measles" || dd.Age != 4 {
		t.Errorf("death cert fields: %+v", dd)
	}
	// Marriage: all six roles present.
	m := &d.Certificates[3]
	if m.Type != model.Marriage || len(m.Roles) != 6 {
		t.Fatalf("marriage cert: %+v", m)
	}
}

func TestReadErrors(t *testing.T) {
	r := NewReader("bad")
	if err := r.ReadBirths(strings.NewReader("0,notayear,a,b,m,c,d,e,f,g,h\n")); err == nil {
		t.Error("bad year should error")
	}
	r = NewReader("bad2")
	if err := r.ReadBirths(strings.NewReader("0,1870,too,few\n")); err == nil {
		t.Error("wrong column count should error")
	}
	r = NewReader("bad3")
	if err := r.ReadBirths(strings.NewReader("0,1870,,,m,kirsty,macrae,hector,macrae,x,y\n")); err == nil {
		t.Error("birth without baby should error")
	}
}

func TestReadNormalisesCase(t *testing.T) {
	r := NewReader("case")
	csv := "0,1870,Mary ,MACRAE,f,Kirsty,Macrae,Hector,Macrae, 5 Portree ,Crofter\n"
	if err := r.ReadBirths(strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	baby := r.Dataset().Record(0)
	if baby.FirstName() != "mary" || baby.Surname() != "macrae" || baby.Address() != "5 portree" {
		t.Errorf("normalisation failed: %+v", baby)
	}
}

func TestRoundTripSimulated(t *testing.T) {
	orig := dataset.Generate(dataset.IOS().Scaled(0.05)).Dataset

	var births, deaths, marriages bytes.Buffer
	w := NewWriter(orig, true)
	if err := w.WriteBirths(&births); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteDeaths(&deaths); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMarriages(&marriages); err != nil {
		t.Fatal(err)
	}

	r := NewReader(orig.Name)
	if err := r.ReadBirths(&births); err != nil {
		t.Fatal(err)
	}
	if err := r.ReadDeaths(&deaths); err != nil {
		t.Fatal(err)
	}
	if err := r.ReadMarriages(&marriages); err != nil {
		t.Fatal(err)
	}
	got := r.Dataset()

	if len(got.Certificates) != len(orig.Certificates) {
		t.Fatalf("certificates: %d vs %d", len(got.Certificates), len(orig.Certificates))
	}
	// Count records per type: the round trip may renumber record ids (CSV
	// groups by certificate type) but must preserve every role occurrence
	// with its values and truth.
	count := func(d *model.Dataset) map[model.Role]int {
		out := map[model.Role]int{}
		for i := range d.Records {
			out[d.Records[i].Role]++
		}
		return out
	}
	co, cg := count(orig), count(got)
	for role, n := range co {
		if cg[role] != n {
			t.Errorf("role %v: %d records round-tripped to %d", role, n, cg[role])
		}
	}

	// True pair sets must survive exactly (same persons linked).
	for _, rp := range []model.RolePair{
		model.MakeRolePair(model.Bm, model.Bm),
		model.MakeRolePair(model.Bb, model.Dd),
	} {
		if len(orig.TruePairs(rp)) != len(got.TruePairs(rp)) {
			t.Errorf("%v: truth pairs %d vs %d", rp, len(orig.TruePairs(rp)), len(got.TruePairs(rp)))
		}
	}
}

func TestWriterWithoutTruth(t *testing.T) {
	orig := dataset.Generate(dataset.IOS().Scaled(0.03)).Dataset
	var buf bytes.Buffer
	if err := NewWriter(orig, false).WriteBirths(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if strings.Contains(header, "truth") {
		t.Error("truth columns written despite IncludeTruth=false")
	}
	r := NewReader("noTruth")
	if err := r.ReadBirths(&buf); err != nil {
		t.Fatal(err)
	}
	for i := range r.Dataset().Records {
		if r.Dataset().Records[i].Truth != model.NoPerson {
			t.Fatal("records without truth columns must have NoPerson")
		}
	}
}

func TestCensusRoundTrip(t *testing.T) {
	orig := dataset.Generate(dataset.IOS().Scaled(0.05).WithCensus()).Dataset

	var buf bytes.Buffer
	if err := NewWriter(orig, true).WriteCensus(&buf); err != nil {
		t.Fatal(err)
	}
	r := NewReader("census")
	if err := r.ReadCensus(&buf); err != nil {
		t.Fatal(err)
	}
	got := r.Dataset()

	countCensus := func(d *model.Dataset) (certs, records, hints int) {
		for i := range d.Certificates {
			if d.Certificates[i].Type == model.Census {
				certs++
			}
		}
		for i := range d.Records {
			if d.Records[i].Role.CertType() == model.Census {
				records++
				if d.Records[i].BirthHint != 0 {
					hints++
				}
			}
		}
		return
	}
	oc, orc, oh := countCensus(orig)
	gc, grc, gh := countCensus(got)
	if oc == 0 {
		t.Fatal("fixture has no census households")
	}
	if gc != oc || grc != orc {
		t.Fatalf("census round trip: %d/%d certs, %d/%d records", gc, oc, grc, orc)
	}
	if gh != oh {
		t.Fatalf("birth hints: %d vs %d", gh, oh)
	}
}

func TestCensusReadRejectsHeadless(t *testing.T) {
	row := "0,1871,,,,,,," + strings.Repeat(",,,", 5) + ",,\n"
	r := NewReader("bad")
	if err := r.ReadCensus(strings.NewReader(row)); err == nil {
		t.Error("headless household accepted")
	}
}
