#!/bin/sh
# bench_offline.sh — run the offline-build and index-maintenance benchmarks
# and emit BENCH_offline.json, the committed before/after record for the
# parallel offline build and the incremental index update:
#
#   BenchmarkOfflineRunWorkers   full offline run (blocking + graph +
#                                resolve), workers=1 vs workers=GOMAXPROCS
#   BenchmarkEmitPairs           sharded LSH pair emission, same split
#   BenchmarkIndexUpdate         one flush's index maintenance: full Build
#                                vs incremental Update of the new generation
#   BenchmarkExtend              incremental re-resolution (flush ER path)
#
# The kernels section tracks the symbol-native similarity hot paths:
#
#   BenchmarkJaroKernel          bitmask (<=64 bytes) vs pooled-scratch Jaro
#   BenchmarkCompareAttrHot      all four compared attributes per candidate,
#                                feature slab and symbol-pair memo warm
#                                (must stay 0 allocs/op)
#   BenchmarkBuildGraphStream    chunked streamed build vs materialised
#                                candidate slice, same dataset
#
# The memdiet section tracks the DS-scale memory-diet tiers (interned
# records, compressed postings, compact snapshots): bytes-per-record
# before/after the diet, heap around the build stages, and v01-gob vs
# v02-binary snapshot sizes and load times. The 100k tier always runs
# (CI smoke); the 1M tier is minutes-long and single-node-RAM-hungry, so
# it only runs with TIERS=full (local, then commit the refreshed JSON).
#
# Usage:
#   ./scripts/bench_offline.sh                 # default -benchtime 3x
#   BENCHTIME=1x ./scripts/bench_offline.sh    # CI smoke: one iteration
#   TIERS=full ./scripts/bench_offline.sh      # adds the 1M memdiet tier
#   OUT=/tmp/b.json ./scripts/bench_offline.sh
#
# For statistically sound comparisons run each side >= 10 times and feed
# the raw `go test -bench` output to benchstat (see README).
set -e
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
OUT="${OUT:-BENCH_offline.json}"
RAW="$(mktemp)"
KERNELS="$(mktemp)"
MEMDIET="$(mktemp)"
trap 'rm -f "$RAW" "$KERNELS" "$MEMDIET"' EXIT

go test -run '^$' -bench 'BenchmarkOfflineRunWorkers|BenchmarkExtend$' \
    -benchtime "$BENCHTIME" . | tee "$RAW"
go test -run '^$' -bench 'BenchmarkEmitPairs' \
    -benchtime "$BENCHTIME" ./internal/blocking | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkIndexUpdate' \
    -benchtime "$BENCHTIME" ./internal/index | tee -a "$RAW"

go test -run '^$' -bench 'BenchmarkJaroKernel' \
    -benchtime "$BENCHTIME" ./internal/strsim | tee "$KERNELS"
go test -run '^$' -bench 'BenchmarkCompareAttr' \
    -benchtime "$BENCHTIME" ./internal/depgraph | tee -a "$KERNELS"
go test -run '^$' -bench 'BenchmarkBuildGraphStream' \
    -benchtime "$BENCHTIME" . | tee -a "$KERNELS"

go run ./cmd/experiments -exp memdiet -certs 100000 | tee "$MEMDIET"
if [ "${TIERS:-}" = "full" ]; then
    go run ./cmd/experiments -exp memdiet -certs 1000000 | tee -a "$MEMDIET"
fi

# GOMAXPROCS defaults to the CPU count; record the effective value so a
# reader knows how many cores the workers=gomaxprocs rows actually used.
GOMAXPROCS_VAL="${GOMAXPROCS:-$(nproc)}"

# Parse `BenchmarkName-N  iters  X ns/op  Y B/op  Z allocs/op` lines into
# JSON. The baseline block records the pre-PR offline pipeline (serial
# blocking/graph/resolve, every flush rebuilding both indexes from
# scratch), measured at the merge base on the same benchmark bodies, for
# ratio checks without digging through git history.
{
  printf '{\n  "gomaxprocs": %s,\n  "benchmarks": [\n' "$GOMAXPROCS_VAL"
  awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      ns = "null"; bytes = "null"; allocs = "null"
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
      }
      printf "%s    {\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", sep, name, $2, ns, bytes, allocs
      sep = ",\n"
    }
    END { printf "\n" }
  ' "$RAW"
  printf '  ],\n'
  printf '  "kernels": [\n'
  awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      ns = "null"; bytes = "null"; allocs = "null"
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
      }
      printf "%s    {\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", sep, name, $2, ns, bytes, allocs
      sep = ",\n"
    }
    END { printf "\n" }
  ' "$KERNELS"
  printf '  ],\n'
  printf '  "memdiet": [\n'
  # Each experiment line is already a JSON object; join with commas,
  # skipping the runner's human-readable status lines.
  awk '/^\{/ { printf "%s    %s", sep, $0; sep = ",\n" } END { printf "\n" }' "$MEMDIET"
  printf '  ],\n'
  # pairHint sizing re-audit (see TestPairHintSizingAudit and the
  # env-guarded BenchmarkEmitPairsScale in internal/blocking): measured
  # distinct-pair fractions of the worst-case hint, which set the
  # emitShard dedup-table sizing to pairHint/4 (now a pooled pairSet
  # reset, not a fresh map, per span).
  printf '  "emit_pairs_sizing_audit": {\n'
  printf '    "distinct_fraction_ios": 0.182,\n'
  printf '    "distinct_fraction_ds_scale": 0.407,\n'
  printf '    "seen_map_hint": "pairHint/4 (pooled pairSet reset per span; was a fresh map per span)",\n'
  printf '    "regression_bench": "SNAPS_BENCH_SCALE=1M go test -bench EmitPairsScale -benchtime 1x ./internal/blocking"\n'
  printf '  },\n'
  printf '  "baseline_pre_pr": [\n'
  printf '    {"name":"BenchmarkFullRun","ns_per_op":554201356,"bytes_per_op":198934378,"allocs_per_op":4601905},\n'
  printf '    {"name":"BenchmarkExtend","ns_per_op":30836144,"bytes_per_op":10438173,"allocs_per_op":27289},\n'
  printf '    {"name":"BenchmarkIndexRebuild","ns_per_op":181623725,"bytes_per_op":33299909,"allocs_per_op":1620109}\n'
  printf '  ]\n}\n'
} > "$OUT"

echo "wrote $OUT"
