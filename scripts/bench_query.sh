#!/bin/sh
# bench_query.sh — run the query hot-path micro-benchmarks and emit
# BENCH_query.json (ns/op, B/op, allocs/op per benchmark) so future PRs can
# diff the serving-path performance trajectory against this one.
#
# Usage:
#   ./scripts/bench_query.sh                 # default -benchtime (1s / 5x)
#   BENCHTIME=1x ./scripts/bench_query.sh    # CI smoke: one iteration
#   OUT=/tmp/b.json ./scripts/bench_query.sh
#
# For statistically sound comparisons run each side >= 10 times and feed
# the raw `go test -bench` output to benchstat (see README).
set -e
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
REBUILD_BENCHTIME="${REBUILD_BENCHTIME:-${BENCHTIME}}"
OUT="${OUT:-BENCH_query.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkSearchHotName|BenchmarkSearchColdName' \
    -benchtime "$BENCHTIME" ./internal/query | tee "$RAW"
go test -run '^$' -bench 'BenchmarkIndexRebuild' \
    -benchtime "$REBUILD_BENCHTIME" ./internal/index | tee -a "$RAW"

# Parse `BenchmarkName-N  iters  X ns/op  Y B/op  Z allocs/op` lines into
# JSON. The baseline block records the pre-overhaul engine (map-per-
# candidate accumulator, full sort, single-mutex memo, serial index build)
# measured on the same benchmark bodies, for ratio checks without digging
# through git history.
{
  printf '{\n  "benchmarks": [\n'
  awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      ns = "null"; bytes = "null"; allocs = "null"
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
      }
      printf "%s    {\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", sep, name, $2, ns, bytes, allocs
      sep = ",\n"
    }
    END { printf "\n" }
  ' "$RAW"
  printf '  ],\n'
  printf '  "baseline_pre_overhaul": [\n'
  printf '    {"name":"BenchmarkSearchHotName","ns_per_op":278385,"bytes_per_op":118657,"allocs_per_op":1540},\n'
  printf '    {"name":"BenchmarkSearchColdName","ns_per_op":260187,"bytes_per_op":102226,"allocs_per_op":1456},\n'
  printf '    {"name":"BenchmarkIndexRebuild","ns_per_op":187502511,"bytes_per_op":33403534,"allocs_per_op":1626878}\n'
  printf '  ]\n}\n'
} > "$OUT"

echo "wrote $OUT"
