#!/bin/sh
# bench_serve.sh — run the open-loop load harness (cmd/snapsload) against
# the full in-process serving stack and emit BENCH_serve.json: per-route
# p50/p95/p99/max latency, throughput, and shed counts for the three
# standard traffic mixes (read-heavy, mixed, ingest-burst).
#
# Usage:
#   ./scripts/bench_serve.sh                      # 400 rps, 10s per mix
#   DURATION=5s RATE=100 ./scripts/bench_serve.sh # CI smoke pass
#   SCALE=0.1 RATE=800 ./scripts/bench_serve.sh   # heavier dataset + load
#   SHARDS=4 ./scripts/bench_serve.sh             # sharded scatter-gather tier
#   OUT=/tmp/serve.json ./scripts/bench_serve.sh
#
# Flight-recorder workflow (see DESIGN.md §13):
#   RECORD=flight.log ./scripts/bench_serve.sh    # record the query log while benching
#   REPLAY=flight.log ./scripts/bench_serve.sh    # replay it closed-loop and compare
#   REPLAY=flight.log REPLAY_SPEED=2 CLOSED_LOOP=0 ./scripts/bench_serve.sh
#                                                 # paced replay at twice recorded rate
#
# The arrival schedule is open-loop: the offered rate does not slow down
# when the server does, so an overloaded run shows real queueing latency
# and admission sheds rather than a self-throttled flattering number.
set -e
cd "$(dirname "$0")/.."

DURATION="${DURATION:-10s}"
RATE="${RATE:-400}"
SCALE="${SCALE:-0.05}"
SEED="${SEED:-1}"
OUT="${OUT:-BENCH_serve.json}"
MIXES="${MIXES:-read-heavy,mixed,ingest-burst}"
SHARDS="${SHARDS:-1}"
RECORD="${RECORD:-}"
REPLAY="${REPLAY:-}"
REPLAY_SPEED="${REPLAY_SPEED:-1}"
CLOSED_LOOP="${CLOSED_LOOP:-1}"
CONCURRENCY="${CONCURRENCY:-8}"

if [ -n "$REPLAY" ]; then
    # Replay a recorded query log against a freshly built in-process
    # server; closed-loop by default so the comparison measures capacity
    # on the recorded op sequence.
    extra="-replay $REPLAY -replay-speed $REPLAY_SPEED -concurrency $CONCURRENCY"
    if [ "$CLOSED_LOOP" = "1" ]; then
        extra="$extra -closed-loop"
    fi
    go run ./cmd/snapsload \
        -dataset ios -scale "$SCALE" -seed "$SEED" -shards "$SHARDS" \
        $extra \
        -out "$OUT"
else
    extra=""
    if [ -n "$RECORD" ]; then
        extra="-record $RECORD -record-sample ${RECORD_SAMPLE:-1}"
    fi
    go run ./cmd/snapsload \
        -dataset ios -scale "$SCALE" \
        -rate "$RATE" -duration "$DURATION" -seed "$SEED" \
        -mixes "$MIXES" -shards "$SHARDS" \
        $extra \
        -out "$OUT"
fi

echo "wrote $OUT"
