#!/bin/sh
# check_metrics.sh — metric-name drift check. Every Prometheus metric
# family the binaries can register (grep for "snaps_… string literals in
# non-test sources) must appear in scripts/metrics_allowlist.txt, and
# every allowlisted name must still exist in the source. A rename, a typo
# in a new family, or a silently dropped metric breaks dashboards and
# alert rules downstream — this turns that into a failing CI step with an
# explicit allowlist edit in the diff.
#
# Usage:
#   ./scripts/check_metrics.sh            # verify (CI)
#   ./scripts/check_metrics.sh --update   # rewrite the allowlist
set -e
cd "$(dirname "$0")/.."

ALLOWLIST=scripts/metrics_allowlist.txt
ACTUAL=$(mktemp)
trap 'rm -f "$ACTUAL"' EXIT

grep -rhoE '"snaps_[a-z0-9_]+' --include="*.go" --exclude="*_test.go" internal/ cmd/ \
    | sed 's/^"//' | sort -u > "$ACTUAL"

if [ "${1:-}" = "--update" ]; then
    cp "$ACTUAL" "$ALLOWLIST"
    echo "updated $ALLOWLIST ($(wc -l < "$ALLOWLIST") names)"
    exit 0
fi

if ! diff -u "$ALLOWLIST" "$ACTUAL"; then
    echo ""
    echo "metric names drifted from $ALLOWLIST."
    echo "lines with '+' are new/renamed families missing from the allowlist;"
    echo "lines with '-' are allowlisted families no longer in the source."
    echo "if the change is intentional, run: ./scripts/check_metrics.sh --update"
    exit 1
fi
echo "metric names match $ALLOWLIST ($(wc -l < "$ALLOWLIST") names)"
